"""TSO litmus testing for non-speculative load-load reordering (§3.3).

The classic message-passing (MP) litmus:

    writer:  data = 1 ; flag = 1        (TSO keeps store order)
    reader:  r1 = flag ; r2 = data      (TSO keeps load order)

Forbidden under TSO: ``r1 == 1 and r2 == 0``.

Orinoco commits the reader's *younger* load (``data``) out of order
before the older one (``flag``) performs.  The outcome stays
TSO-correct because the committed load's line is **locked down**: the
writer's invalidation of ``data`` is not acknowledged until every older
reader load has performed, so the writer's ``flag = 1`` (ordered after
``data = 1``) cannot become visible to a reader that already bound
``data = 0`` and will still read ``flag``.

This module enumerates interleavings of a two-agent system — a writer
issuing invalidation-based stores, and a reader whose loads may
perform/commit out of order — with and without the lockdown matrix,
and checks the observable outcomes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core import LockdownMatrix

DATA, FLAG = 0x100, 0x200


@dataclass
class LitmusOutcome:
    r_flag: int
    r_data: int

    @property
    def forbidden_under_tso(self) -> bool:
        return self.r_flag == 1 and self.r_data == 0

    def __hash__(self):
        return hash((self.r_flag, self.r_data))

    def __eq__(self, other):
        return (self.r_flag, self.r_data) == (other.r_flag, other.r_data)


class _Reader:
    """The reader core's LQ: two loads, the younger may run early.

    LQ entry 0 = older load (flag), entry 1 = younger load (data).
    """

    def __init__(self, use_lockdown: bool):
        self.use_lockdown = use_lockdown
        self.lockdown = LockdownMatrix(ldt_size=4, lq_size=2) \
            if use_lockdown else None
        self.performed = [False, False]
        self.committed = [False, False]
        self.values: List[Optional[int]] = [None, None]
        #: lines this reader holds (can be invalidated)
        self.cached: Set[int] = {DATA, FLAG}

    def perform(self, index: int, memory: Dict[int, int]) -> None:
        """A load obtains its value from the coherent memory image
        (or its own cached copy — same value while the line is held)."""
        addr = FLAG if index == 0 else DATA
        self.values[index] = memory[addr]
        self.performed[index] = True
        if self.lockdown is not None:
            self.lockdown.load_performed(index)

    def commit_young_early(self) -> None:
        """Commit the younger (data) load before the older performed."""
        assert self.performed[1] and not self.performed[0]
        self.committed[1] = True
        if self.lockdown is not None:
            older = np.zeros(2, dtype=bool)
            older[0] = True
            self.lockdown.lockdown(DATA, 1, older)

    def may_ack_invalidation(self, addr: int) -> bool:
        """Would this reader acknowledge an invalidation right now?"""
        if self.lockdown is not None and self.lockdown.is_locked(addr):
            return False
        return True

    def invalidate(self, addr: int) -> None:
        """An acknowledged invalidation: performed-but-uncommitted
        speculative loads to the line are squashed and must replay —
        the standard TSO speculation support that the lockdown
        mechanism complements (committed loads cannot replay; their
        lines are protected by the withheld acknowledgement instead)."""
        self.cached.discard(addr)
        for index, load_addr in ((0, FLAG), (1, DATA)):
            if load_addr != addr or not self.performed[index] \
                    or self.committed[index]:
                continue
            # only loads that performed *out of order* (an older load
            # has not performed yet) are vulnerable: the oldest
            # outstanding load's value is ordered at its perform instant
            older_unperformed = any(
                not self.performed[older] for older in range(index))
            if older_unperformed:
                self.performed[index] = False
                self.values[index] = None


@dataclass
class _Writer:
    """TSO writer: stores drain in order; each store becomes globally
    visible only after the reader acknowledged the invalidation."""

    pending: List[Tuple[int, int]] = field(
        default_factory=lambda: [(DATA, 1), (FLAG, 1)])

    def next_store(self) -> Optional[Tuple[int, int]]:
        return self.pending[0] if self.pending else None

    def retire_store(self) -> None:
        self.pending.pop(0)


def run_interleaving(schedule: List[str],
                     use_lockdown: bool) -> Optional[LitmusOutcome]:
    """Execute one interleaving; returns the outcome or None if the
    schedule was inapplicable (an event fired when not enabled)."""
    memory = {DATA: 0, FLAG: 0}
    reader = _Reader(use_lockdown)
    writer = _Writer()
    for event in schedule:
        if event == "W":
            store = writer.next_store()
            if store is None:
                return None
            addr, value = store
            if not reader.may_ack_invalidation(addr):
                return None          # invalidation withheld: store waits
            reader.invalidate(addr)
            memory[addr] = value
            writer.retire_store()
        elif event == "Ld":          # younger load (data) performs
            if reader.performed[1]:
                return None
            reader.perform(1, memory)
        elif event == "Cd":          # younger load commits early
            if reader.committed[1] or not reader.performed[1] \
                    or reader.performed[0]:
                return None
            reader.commit_young_early()
        elif event == "Lf":          # older load (flag) performs
            if reader.performed[0]:
                return None
            reader.perform(0, memory)
        else:                        # pragma: no cover
            raise ValueError(event)
    if not (reader.performed[0] and reader.performed[1]):
        return None
    return LitmusOutcome(r_flag=reader.values[0], r_data=reader.values[1])


def enumerate_outcomes(use_lockdown: bool) -> Set[LitmusOutcome]:
    """All observable outcomes over every interleaving of the writer's
    two stores and the reader's (possibly reordered) loads."""
    outcomes: Set[LitmusOutcome] = set()
    # 5-event schedules cover the no-replay paths; 6/7-event schedules
    # add the replays of invalidation-squashed speculative loads
    for events in (["W", "W", "Ld", "Cd", "Lf"],
                   ["W", "W", "Ld", "Cd", "Lf", "Ld"],
                   ["W", "W", "Ld", "Cd", "Lf", "Lf"],
                   ["W", "W", "Ld", "Cd", "Lf", "Ld", "Lf"]):
        for schedule in set(itertools.permutations(events)):
            outcome = run_interleaving(list(schedule), use_lockdown)
            if outcome is not None:
                outcomes.add(outcome)
    # in-order execution outcomes are always possible too
    for schedule in ([["Lf", "Ld", "W", "W"]], [["W", "W", "Lf", "Ld"]],
                     [["W", "Lf", "W", "Ld"]], [["Lf", "W", "W", "Ld"]]):
        outcome = run_interleaving(schedule[0], use_lockdown)
        if outcome is not None:
            outcomes.add(outcome)
    return outcomes


def tso_holds(outcomes: Set[LitmusOutcome]) -> bool:
    return not any(o.forbidden_under_tso for o in outcomes)
