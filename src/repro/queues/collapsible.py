"""SHIFT: collapsible queue with stable handles and shift accounting."""

from __future__ import annotations

from typing import List, Optional

from .base import QueueStructure


class CollapsibleQueue(QueueStructure):
    """Compacting queue (Alpha 21264 style, Figure 1(a)).

    Removal shifts every younger instruction down one slot so positional
    order always equals age order (position 0 = oldest).  Callers hold a
    *stable handle* (returned by :meth:`allocate`); :meth:`position`
    maps it to the current physical slot.  ``shift_ops`` counts
    entry-shifts performed — the quantity behind the compacting
    circuit's O(m·n) power cost that the circuit model (§6.3) charges
    2.1 W for at 96 entries.
    """

    def __init__(self, size: int):
        super().__init__(size)
        self._slots: List[Optional[int]] = []   # handle per position
        self._next_handle = 0
        #: cumulative number of single-entry shifts performed
        self.shift_ops = 0

    def allocate(self) -> Optional[int]:
        if len(self._slots) == self.size:
            self.alloc_failures += 1
            return None
        handle = self._next_handle
        self._next_handle += 1
        self._slots.append(handle)
        return handle

    def free(self, entry: int) -> None:
        try:
            position = self._slots.index(entry)
        except ValueError as exc:
            raise ValueError(f"handle {entry} not live") from exc
        del self._slots[position]
        # every younger instruction shifts down one slot
        self.shift_ops += len(self._slots) - position

    def position(self, handle: int) -> int:
        """Current physical slot of a live handle (0 = oldest)."""
        return self._slots.index(handle)

    def handles_oldest_first(self) -> List[int]:
        """Live handles in age order — what a positional selector sees."""
        return list(self._slots)

    def occupancy(self) -> int:
        return len(self._slots)

    def allocatable(self) -> int:
        return self.size - len(self._slots)

    def is_live(self, entry: int) -> bool:
        return entry in self._slots
