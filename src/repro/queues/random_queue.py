"""RAND: free-list allocation into arbitrary gaps (non-collapsible)."""

from __future__ import annotations

from typing import List, Optional

from .base import QueueStructure


class RandomQueue(QueueStructure):
    """Free-list queue: any gap is allocatable, any entry freeable.

    Deployed with an age matrix this is the state-of-the-art scheduler
    organization (AMD Bulldozer, IBM POWER8) and the organization of all
    of Orinoco's non-collapsible queues.  Allocation picks the
    lowest-numbered free entry; since positions carry no ordering
    semantics, the choice is immaterial (a hardware implementation would
    use a priority encoder over the free vector).
    """

    def __init__(self, size: int):
        super().__init__(size)
        self._free: List[int] = list(range(size - 1, -1, -1))
        self._live = [False] * size

    def allocate(self) -> Optional[int]:
        if not self._free:
            self.alloc_failures += 1
            return None
        entry = self._free.pop()
        self._live[entry] = True
        return entry

    def free(self, entry: int) -> None:
        if not self._live[entry]:
            raise ValueError(f"entry {entry} not live")
        self._live[entry] = False
        self._free.append(entry)

    def occupancy(self) -> int:
        return self.size - len(self._free)

    def allocatable(self) -> int:
        return len(self._free)

    def is_live(self, entry: int) -> bool:
        return self._live[entry]
