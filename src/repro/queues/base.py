"""Common interface for the queue organizations the paper compares.

A queue structure only manages *entry allocation and reclamation* — the
payload lives with the caller, keyed by the entry index (or stable
handle for the collapsible queue).  The three organizations (§2.1,
Figure 1):

* **SHIFT** (collapsible): compacts on every removal; positional order
  equals age order; capacity-efficient but O(m·n) shifts per compaction.
* **CIRC** (circular): head/tail FIFO; removals in the middle leave
  gaps that are reclaimed only when the head passes them — capacity
  inefficiency under out-of-order removal.
* **RAND** (random/free-list): any free entry may be allocated, any
  entry freed — capacity-efficient but positions carry no age
  information, hence the age matrix.
"""

from __future__ import annotations

import abc
from typing import List, Optional


class QueueStructure(abc.ABC):
    """Entry allocator for an instruction queue / ROB / LQ."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("queue size must be positive")
        self.size = size
        #: cumulative count of allocations that failed due to capacity
        self.alloc_failures = 0

    @abc.abstractmethod
    def allocate(self) -> Optional[int]:
        """Claim an entry; return its index or None when full."""

    @abc.abstractmethod
    def free(self, entry: int) -> None:
        """Release an entry previously returned by :meth:`allocate`."""

    @abc.abstractmethod
    def occupancy(self) -> int:
        """Number of live entries."""

    def is_full(self) -> bool:
        return self.allocatable() == 0

    @abc.abstractmethod
    def allocatable(self) -> int:
        """How many entries could be allocated right now.

        For CIRC this is less than ``size - occupancy()`` when gaps
        exist — that difference *is* the capacity inefficiency the paper
        talks about.
        """

    def allocate_block(self, count: int) -> List[int]:
        """Allocate up to ``count`` entries; returns those obtained."""
        entries = []
        for _ in range(count):
            entry = self.allocate()
            if entry is None:
                break
            entries.append(entry)
        return entries
