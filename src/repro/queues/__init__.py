"""Queue organizations: collapsible (SHIFT), circular (CIRC), random (RAND)."""

from .base import QueueStructure
from .circular import CircularQueue
from .collapsible import CollapsibleQueue
from .random_queue import RandomQueue

__all__ = ["QueueStructure", "CircularQueue", "CollapsibleQueue",
           "RandomQueue"]
