"""CIRC: head/tail circular queue with deferred gap reclamation."""

from __future__ import annotations

from typing import Optional

from .base import QueueStructure


class CircularQueue(QueueStructure):
    """Circular buffer: allocate at tail, reclaim only from the head.

    Freeing a middle entry marks it dead, but its slot is not reusable
    until the head pointer sweeps past it — the capacity inefficiency of
    Figure 1(b).  With strictly in-order removal (an in-order-commit
    ROB) it behaves as a perfect FIFO.
    """

    def __init__(self, size: int):
        super().__init__(size)
        self.head = 0
        self.tail = 0          # next slot to allocate
        self.count = 0         # slots between head and tail (incl. gaps)
        self._dead = [False] * size
        self._live = [False] * size
        #: cumulative entry-cycles lost to gaps (capacity inefficiency)
        self.gap_slots = 0

    def allocate(self) -> Optional[int]:
        if self.count == self.size:
            self.alloc_failures += 1
            return None
        entry = self.tail
        self.tail = (self.tail + 1) % self.size
        self.count += 1
        self._live[entry] = True
        self._dead[entry] = False
        return entry

    def free(self, entry: int) -> None:
        if not self._live[entry]:
            raise ValueError(f"entry {entry} not live")
        self._live[entry] = False
        self._dead[entry] = True
        self._reclaim()

    def _reclaim(self) -> None:
        while self.count and self._dead[self.head]:
            self._dead[self.head] = False
            self.head = (self.head + 1) % self.size
            self.count -= 1

    def occupancy(self) -> int:
        return sum(self._live)

    def allocatable(self) -> int:
        return self.size - self.count

    def gaps(self) -> int:
        """Dead-but-unreclaimed slots between head and tail."""
        return self.count - self.occupancy()

    def tick(self) -> None:
        """Accumulate gap statistics once per cycle (optional)."""
        self.gap_slots += self.gaps()

    def is_live(self, entry: int) -> bool:
        return self._live[entry]
