"""Normalized environment-variable parsing.

Every ``REPRO_*`` knob that means yes/no goes through :func:`env_flag`
so the accepted spellings are uniform across the code base.  The seed
grew several ad-hoc parsers with surprising edges (``REPRO_CACHE=false``
*enabled* the cache because only ``"0"``/``""``/``"no"`` were treated
as falsy); this module is the single source of truth instead.

Unrecognised values fall back to the default and warn once per
(variable, value) pair, so a typo like ``REPRO_CACHE=ture`` is loud
instead of silently flipping a feature.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Set, Tuple

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"0", "", "false", "no", "off"})

_warned: Set[Tuple[str, str]] = set()


def env_flag(name: str, default: bool = False) -> bool:
    """Boolean from the environment: 1/true/yes/on vs 0/""/false/no/off
    (case-insensitive).  Unset or unrecognised values → ``default``."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    if (name, raw) not in _warned:
        _warned.add((name, raw))
        warnings.warn(
            f"{name}={raw!r} is not a recognised boolean "
            f"(use one of {sorted(_TRUTHY)} / {sorted(_FALSY)}); "
            f"using the default ({default})", RuntimeWarning,
            stacklevel=2)
    return default


def env_float(name: str, default: Optional[float] = None
              ) -> Optional[float]:
    """Float from the environment; unset/unparseable → ``default``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        if (name, raw) not in _warned:
            _warned.add((name, raw))
            warnings.warn(f"{name}={raw!r} is not a number; "
                          f"using the default ({default})",
                          RuntimeWarning, stacklevel=2)
        return default


def env_int(name: str, default: int = 0) -> int:
    """Integer from the environment; unset/unparseable → ``default``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        if (name, raw) not in _warned:
            _warned.add((name, raw))
            warnings.warn(f"{name}={raw!r} is not an integer; "
                          f"using the default ({default})",
                          RuntimeWarning, stacklevel=2)
        return default
