"""Process / circuit parameters for the 28 nm 8T PIM arrays.

The constants are calibrated against the paper's SPICE results
(Table 2): the three reported arrays (96×96 IQ age matrix, 224×224 ROB
age matrix, 72×56 memory disambiguation matrix) are used as calibration
points for the area and timing models; the model then *predicts* other
sizes (the wakeup matrix, the 512-entry-ROB scaling study of §6.4).

Fit quality: areas agree within ~3%, latencies within ~3% for the two
square arrays and ~15% for the rectangular MDM (whose SPICE timing
benefits from a per-array Vref the analytic model does not capture) —
see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """28 nm process + array design point (Table 2 footnote)."""

    node_nm: float = 28.0
    vdd: float = 0.9              # V
    vdd_low: float = 0.4          # V — lowered supply for column clear
    vref: float = 0.48            # V — nominal sense reference

    # -- area (calibrated to Table 2) --------------------------------
    #: push-rule 8T bit cell area
    cell_area_um2: float = 0.20
    #: per-row periphery (RWL driver, write driver share)
    periph_row_um2: float = 8.6
    #: per-column periphery (sense amplifier, precharge)
    periph_col_um2: float = 8.6
    #: fixed per-bank overhead (control, timing)
    bank_fixed_um2: float = 27.5

    # -- timing (calibrated to Table 2) --------------------------------
    #: decode + sense + margin overhead of a PIM read
    read_base_ps: float = 388.0
    #: read bit line discharge, per row on the RBL
    read_per_row_ps: float = 0.40
    #: word line RC, per column within one bank
    read_per_col_ps: float = 0.10
    #: extra 2-input NOR for vertically split arrays (§6.4)
    split_nor_ps: float = 20.0
    #: row write base / per-column slope
    write_base_ps: float = 308.0
    write_per_line_ps: float = 0.21875

    # -- bit line computing --------------------------------------------
    #: single-cell discharge current
    cell_current_ua: float = 25.0
    #: relative per-cell on-current variation (sigma/mean)
    cell_current_sigma: float = 0.025
    #: RBL capacitance per attached cell
    bitline_cap_ff_per_row: float = 0.25
    #: sense amplifier input-referred offset (sigma)
    sa_offset_mv: float = 1.2

    # -- energy (calibrated so Table 2 activities land on Table 2
    # powers; the report shows modelled vs paper side by side) --------
    #: switching energy per cell on a precharged read bit line
    bitline_energy_fj_per_row: float = 1.9
    #: sense amplifier energy per activation
    sa_energy_fj: float = 2.2
    #: word line / driver energy per activation per column
    wordline_energy_fj_per_col: float = 0.06
    #: write energy per cell (row write / column clear)
    write_energy_fj_per_cell: float = 0.6

    #: clock of the matrix schedulers (§6.3: 2 GHz worst case)
    clock_ghz: float = 2.0


#: default technology instance used throughout the circuit model
TECH_28NM = Technology()


@dataclass(frozen=True)
class CoreCostModel:
    """Baseline OoO core area/power (the McPAT substitution, 22 nm).

    Only the totals matter — they are the denominators of the §6.3
    overhead ratios.  The component split is a conventional breakdown
    of a Skylake-class core at these totals.
    """

    area_mm2: float = 8.0
    power_w: float = 23.0

    def components(self):
        return [
            ("L1/L2 caches", 0.25 * self.area_mm2, 0.11 * self.power_w),
            ("OoO engine (ROB/IQ/rename)", 0.15 * self.area_mm2,
             0.17 * self.power_w),
            ("functional units", 0.19 * self.area_mm2,
             0.26 * self.power_w),
            ("load/store unit", 0.10 * self.area_mm2,
             0.13 * self.power_w),
            ("fetch/decode/branch", 0.12 * self.area_mm2,
             0.15 * self.power_w),
            ("register files", 0.06 * self.area_mm2, 0.11 * self.power_w),
            ("clock/other", 0.13 * self.area_mm2, 0.07 * self.power_w),
        ]


CORE_22NM = CoreCostModel()
