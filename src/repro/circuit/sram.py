"""8T SRAM PIM array model: area, timing, energy (paper §4).

One :class:`SRAM8TArray` models one matrix scheduler: an R×C array of
8T cells with transposed read bit lines / read word lines, horizontal
multibanking for superscalar dispatch (§4.3) and optional vertical
splitting for very large arrays (§6.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import TECH_28NM, Technology


@dataclass
class SRAM8TArray:
    """One PIM matrix scheduler array."""

    rows: int
    cols: int
    banks: int = 4
    #: vertical segments: RBLs cut into this many pieces, partial
    #: results combined with a NOR tree (§6.4); 1 = no split
    vertical_splits: int = 1
    tech: Technology = TECH_28NM

    def __post_init__(self):
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")
        if self.banks < 1 or self.rows % self.banks:
            raise ValueError("rows must divide evenly into banks")
        if self.vertical_splits < 1 or self.rows % self.vertical_splits:
            raise ValueError("rows must divide evenly into segments")

    # -- area ------------------------------------------------------------

    def cell_count(self) -> int:
        return self.rows * self.cols

    def transistor_count(self) -> int:
        return 8 * self.cell_count()

    def area_mm2(self) -> float:
        """Array area including periphery.

        Because the RBLs stay integrated across banks, sense amplifiers
        are not duplicated per bank (§6.3) — only the fixed per-bank
        control is."""
        tech = self.tech
        cells = self.cell_count() * tech.cell_area_um2
        periphery = (self.rows * tech.periph_row_um2
                     + self.cols * tech.periph_col_um2
                     + self.banks * tech.bank_fixed_um2)
        # a vertical split duplicates the column periphery per segment
        if self.vertical_splits > 1:
            periphery += (self.vertical_splits - 1) \
                * self.cols * tech.periph_col_um2
        return (cells + periphery) / 1e6

    # -- timing -----------------------------------------------------------

    def read_latency_ps(self) -> float:
        """One PIM operation: precharge-activate-sense on all rows."""
        tech = self.tech
        rows_on_rbl = self.rows // self.vertical_splits
        latency = (tech.read_base_ps
                   + tech.read_per_row_ps * rows_on_rbl
                   + tech.read_per_col_ps * (self.cols // self.banks))
        if self.vertical_splits > 1:
            latency += tech.split_nor_ps
        return latency

    def row_write_ps(self) -> float:
        """Dispatch-time full-row write."""
        tech = self.tech
        return (tech.write_base_ps
                + tech.write_per_line_ps * (self.cols // self.banks)
                + tech.write_per_line_ps * self.rows / self.vertical_splits)

    def column_clear_ps(self) -> float:
        """Dual-supply-voltage column-wise clear (§4.2) — same path
        length as a row write in this model."""
        return self.row_write_ps()

    def meets_timing(self, clock_ghz: float = None) -> bool:
        clock = clock_ghz if clock_ghz is not None else self.tech.clock_ghz
        return self.read_latency_ps() <= 1000.0 / clock

    def min_vertical_splits(self, clock_ghz: float = None) -> int:
        """Smallest power-of-two vertical split meeting the clock (§6.4)."""
        splits = 1
        while splits <= self.rows:
            candidate = SRAM8TArray(self.rows, self.cols, self.banks,
                                    splits, self.tech)
            if candidate.meets_timing(clock_ghz):
                return splits
            splits *= 2
        raise ValueError(
            f"{self.rows}x{self.cols} cannot meet timing at any split")

    # -- energy -------------------------------------------------------------

    def pim_op_energy_pj(self, active_rows: int = None,
                         active_cols: int = None) -> float:
        """Energy of one PIM read: precharged RBLs discharge, activated
        RWLs toggle, sense amplifiers fire.

        ``active_rows`` = precharged row lines (requesting entries),
        ``active_cols`` = activated word lines (the applied vector).
        """
        tech = self.tech
        rows = self.rows if active_rows is None else active_rows
        cols = self.cols if active_cols is None else active_cols
        energy_fj = (
            # each precharged RBL swings; its capacitance grows with the
            # attached cells (one per column), reduced by vertical splits
            rows * self.cols * tech.bitline_energy_fj_per_row
            / self.vertical_splits
            # one sense amplifier fires per precharged row
            + rows * tech.sa_energy_fj
            # activated word lines toggle across their bank's rows
            + cols * (self.rows / self.banks)
            * tech.wordline_energy_fj_per_col)
        return energy_fj / 1000.0

    def write_energy_pj(self) -> float:
        """Row write or column clear: one full line of cells toggles."""
        energy_fj = self.cols * self.tech.write_energy_fj_per_cell * 8
        return energy_fj / 1000.0

    def power_w(self, ops_per_cycle: float, writes_per_cycle: float = 0.0,
                clock_ghz: float = None, active_rows: int = None) -> float:
        """Activity-based power at the scheduler clock."""
        clock = clock_ghz if clock_ghz is not None else self.tech.clock_ghz
        energy_pj = (ops_per_cycle * self.pim_op_energy_pj(active_rows)
                     + writes_per_cycle * self.write_energy_pj())
        return energy_pj * clock / 1000.0
