"""PIM circuit model: 8T SRAM arrays, bit line computing, comparisons."""

from .alternatives import (CollapsibleQueueCost, DynamicLogicMatrix,
                           StaticLogicMatrix)
from .bitline import BitlineModel
from .montecarlo import (MonteCarloResult, simulate_bitcount,
                         verify_six_sigma)
from .report import (MatrixSpec, OverheadReport, PAPER_TABLE2,
                     ScalabilityRow, TABLE2_MATRICES, Table2Row,
                     format_scalability, format_table2, overhead_report,
                     scalability_report, table2)
from .sram import SRAM8TArray
from .technology import CORE_22NM, TECH_28NM, CoreCostModel, Technology

__all__ = ["CollapsibleQueueCost", "DynamicLogicMatrix",
           "StaticLogicMatrix", "BitlineModel", "MonteCarloResult",
           "simulate_bitcount", "verify_six_sigma", "MatrixSpec",
           "OverheadReport", "PAPER_TABLE2", "ScalabilityRow",
           "TABLE2_MATRICES", "Table2Row", "format_scalability",
           "format_table2", "overhead_report", "scalability_report",
           "table2", "SRAM8TArray", "CORE_22NM", "TECH_28NM",
           "CoreCostModel", "Technology"]
