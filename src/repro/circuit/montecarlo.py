"""Monte Carlo robustness analysis of the PIM operations (paper §6.1:
"more than six sigma stability").

Cell on-current variation makes the per-bit voltage drop noisy; the
worst case for the bit count encoding is distinguishing ``threshold-1``
from ``threshold`` ones.  The analysis samples per-cell currents plus
sense-amplifier offset and reports the misclassification rate and the
equivalent sigma margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .bitline import BitlineModel


@dataclass
class MonteCarloResult:
    threshold: int
    trials: int
    failures: int
    margin_sigma: float

    @property
    def failure_rate(self) -> float:
        return self.failures / self.trials if self.trials else 0.0

    def passes_six_sigma(self) -> bool:
        return self.margin_sigma >= 6.0


def _sigma_from_analytic(model: BitlineModel, threshold: int) -> float:
    """Analytic margin: nominal half-LSB margin over total noise sigma."""
    tech = model.tech
    drop = model.drop_per_bit_mv()
    margin = drop / 2.0
    # worst case: `threshold` cells discharge, each with current sigma
    cell_noise = math.sqrt(threshold) * tech.cell_current_sigma * drop
    noise = math.sqrt(cell_noise ** 2 + tech.sa_offset_mv ** 2)
    return margin / noise


def simulate_bitcount(model: BitlineModel, threshold: int,
                      trials: int = 20000, seed: int = 7
                      ) -> MonteCarloResult:
    """Sample the two worst-case counts and check classification."""
    rng = np.random.default_rng(seed)
    tech = model.tech
    drop = model.drop_per_bit_mv()
    vref = model.vref_for_threshold_mv(threshold)
    failures = 0
    for ones in (threshold - 1, threshold):
        currents = rng.normal(1.0, tech.cell_current_sigma,
                              size=(trials, max(ones, 1)))
        drops = currents[:, :ones].sum(axis=1) * drop if ones else \
            np.zeros(trials)
        offsets = rng.normal(0.0, tech.sa_offset_mv, size=trials)
        voltages = tech.vdd * 1000.0 - drops + offsets
        sensed_high = voltages > vref
        expected = ones < threshold
        failures += int(np.count_nonzero(sensed_high != expected))
    return MonteCarloResult(
        threshold=threshold, trials=2 * trials, failures=failures,
        margin_sigma=_sigma_from_analytic(model, threshold))


def verify_six_sigma(model: BitlineModel, max_threshold: int = 8,
                     trials: int = 20000) -> bool:
    """Paper claim: PIM ops are stable beyond six sigma for practical
    issue widths."""
    return all(simulate_bitcount(model, t, trials).passes_six_sigma()
               for t in range(1, max_threshold + 1))
