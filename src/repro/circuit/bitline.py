"""Bit line computing: voltage-drop bit counting (paper §4.1).

During a PIM read every activated cell storing a one discharges the
precharged read bit line with current I; the voltage drop after the
sense window is proportional to the number of ones.  Thresholding the
RBL voltage against a reference therefore computes
``popcount(row & vec) < k`` — the bit count encoding — with a plain
single-ended sense amplifier and no ADC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .technology import TECH_28NM, Technology


@dataclass
class BitlineModel:
    """Analytic RBL discharge for one array geometry."""

    columns: int                    # cells attached to one RBL
    sense_window_ps: float = 40.0
    tech: Technology = TECH_28NM

    @property
    def capacitance_ff(self) -> float:
        return self.columns * self.tech.bitline_cap_ff_per_row

    def drop_per_bit_mv(self) -> float:
        """Voltage drop contributed by a single discharging cell."""
        # dV = I * t / C      (uA * ps / fF = mV)
        return (self.tech.cell_current_ua * self.sense_window_ps
                / self.capacitance_ff)

    def voltage_mv(self, ones: int) -> float:
        """RBL voltage after the sense window with ``ones`` set cells."""
        drop = min(ones * self.drop_per_bit_mv(),
                   self.tech.vdd * 1000.0)   # clips at full discharge
        return self.tech.vdd * 1000.0 - drop

    def vref_for_threshold_mv(self, threshold: int) -> float:
        """Reference voltage so that ``ones < threshold`` senses high.

        Placed halfway between the expected levels for
        ``threshold - 1`` and ``threshold`` ones — the per-issue-width
        reference the SAs are regulated to (§4.1, Figure 9).
        """
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        upper = self.voltage_mv(threshold - 1)
        lower = self.voltage_mv(threshold)
        return (upper + lower) / 2.0

    def sense(self, ones: int, threshold: int,
              vref_mv: Optional[float] = None) -> bool:
        """Nominal (variation-free) sensing: True when ones < threshold."""
        reference = vref_mv if vref_mv is not None \
            else self.vref_for_threshold_mv(threshold)
        return self.voltage_mv(ones) > reference

    def margin_mv(self, threshold: int) -> float:
        """Nominal sensing margin on either side of the reference."""
        return self.drop_per_bit_mv() / 2.0
