"""Comparison designs (paper §6.3): dynamic-logic 12T matrices, static
logic, and the collapsible queue's compacting circuit.

These provide the three headline contrasts:
* PIM vs 12T dynamic logic → 3.75× area reduction at equal size;
* static logic fails timing beyond 64×64 (reduction-tree depth + wires);
* a 96-entry collapsible IQ burns ≈ 2.1 W (~70× the PIM age matrix).
"""

from __future__ import annotations

from dataclasses import dataclass

from .sram import SRAM8TArray
from .technology import TECH_28NM, Technology


@dataclass
class DynamicLogicMatrix:
    """Prior-work matrix scheduler: 12T cells in dynamic logic.

    8 of the 12 transistors store the dependency; 4 implement the AND /
    wired-NOR.  Even with careful layout the density stays half that of
    push-rule SRAM (§4), so relative to the PIM array the area grows by
    12/8 (transistors) × 2 (density) × 1.25 (periphery that the PIM
    design folds into the array) = 3.75×.
    """

    rows: int
    cols: int
    tech: Technology = TECH_28NM

    TRANSISTORS_PER_CELL = 12
    DENSITY_PENALTY = 2.0
    PERIPHERY_PENALTY = 1.25

    def transistor_count(self) -> int:
        return self.TRANSISTORS_PER_CELL * self.rows * self.cols

    def area_mm2(self) -> float:
        pim = SRAM8TArray(self.rows, self.cols, banks=1, tech=self.tech)
        scale = (self.TRANSISTORS_PER_CELL / 8.0) * self.DENSITY_PENALTY \
            * self.PERIPHERY_PENALTY
        return pim.area_mm2() * scale

    def area_ratio_vs_pim(self) -> float:
        pim = SRAM8TArray(self.rows, self.cols, banks=1, tech=self.tech)
        return self.area_mm2() / pim.area_mm2()


@dataclass
class StaticLogicMatrix:
    """Matrix scheduler in static logic: register file + gates.

    The per-row AND feeds a C-input reduction tree; beyond modest sizes
    the wiring of the reduction dominates and the cycle time cannot be
    constrained (§6.3: "extremely hard to constrain when the size
    exceeds 64×64")."""

    rows: int
    cols: int
    tech: Technology = TECH_28NM

    GATE_DELAY_PS = 30.0
    WIRE_PS_PER_CELL = 3.5

    def latency_ps(self) -> float:
        levels = max(1, (self.cols - 1).bit_length())
        return self.GATE_DELAY_PS * levels + self.WIRE_PS_PER_CELL \
            * self.cols

    def meets_timing(self, clock_ghz: float = None) -> bool:
        clock = clock_ghz if clock_ghz is not None else self.tech.clock_ghz
        return self.latency_ps() <= 1000.0 / clock

    def max_feasible_size(self, clock_ghz: float = None) -> int:
        """Largest power-of-two square that still meets timing."""
        size = 1
        while StaticLogicMatrix(size * 2, size * 2,
                                self.tech).meets_timing(clock_ghz):
            size *= 2
        return size


@dataclass
class CollapsibleQueueCost:
    """Power of a SHIFT (collapsible) issue queue.

    Compaction potentially reads and rewrites *every* entry every cycle
    — entry payloads are tens of bytes, so the energy dwarfs a bit
    matrix.  Calibrated to the paper's 2.1 W at 96 entries.
    """

    entries: int
    entry_bits: int = 160           # payload+tags of one IQ entry
    tech: Technology = TECH_28NM

    #: read+write energy per entry-bit per compaction (fJ)
    ENERGY_PER_BIT_FJ = 68.0

    def power_w(self, clock_ghz: float = None,
                activity: float = 1.0) -> float:
        clock = clock_ghz if clock_ghz is not None else self.tech.clock_ghz
        energy_pj = self.entries * self.entry_bits \
            * self.ENERGY_PER_BIT_FJ / 1000.0
        return energy_pj * clock * activity / 1000.0

    def ratio_vs_age_matrix(self, age_matrix_power_w: float) -> float:
        return self.power_w() / age_matrix_power_w
