"""Table 2 and §6.3/§6.4 circuit reports.

Builds the four matrix-scheduler arrays of the evaluated core, computes
area / latency / power from the calibrated models, and derives the
paper's headline overhead numbers (0.3% area, 0.6% power, 3.75× vs
dynamic logic, collapsible-queue wattage, ROB-512 scaling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .alternatives import (CollapsibleQueueCost, DynamicLogicMatrix,
                           StaticLogicMatrix)
from .sram import SRAM8TArray
from .technology import CORE_22NM, TECH_28NM, CoreCostModel, Technology


@dataclass
class MatrixSpec:
    """One matrix scheduler instance plus its runtime activity.

    ``active_rows`` is the number of RBLs precharged per operation —
    all valid entries for the IQ-side matrices, but only the completed
    commit candidates for the ROB age matrix (§6.3: its activity is set
    by completed/speculative instructions, which is why the much larger
    ROB array burns *less* power than the IQ one)."""

    name: str
    rows: int
    cols: int
    banks: int = 4
    #: PIM reads per cycle (selection / commit checks / searches)
    ops_per_cycle: float = 1.0
    #: row writes + column clears per cycle (dispatch / resolve)
    writes_per_cycle: float = 2.0
    #: precharged rows per operation (None = all)
    active_rows: int = None

    def array(self, tech: Technology = TECH_28NM) -> SRAM8TArray:
        return SRAM8TArray(self.rows, self.cols, self.banks, tech=tech)


#: the paper's evaluated configuration (Table 2).  Activities are
#: nominal per-cycle operation counts for the Base core; the harness
#: can substitute measured ones from simulation stats.
TABLE2_MATRICES = [
    MatrixSpec("Age Matrix (IQ)", 96, 96, 4,
               ops_per_cycle=1.0, writes_per_cycle=3.0),
    MatrixSpec("Age Matrix (ROB)", 224, 224, 4,
               ops_per_cycle=1.0, writes_per_cycle=4.0, active_rows=12),
    MatrixSpec("Memory Disambiguation Matrix", 72, 56, 4,
               ops_per_cycle=2.5, writes_per_cycle=2.0),
    MatrixSpec("Wakeup Matrix", 96, 96, 4,
               ops_per_cycle=1.0, writes_per_cycle=3.0),
]

#: the paper's Table 2, for side-by-side comparison
PAPER_TABLE2 = {
    "Age Matrix (IQ)": dict(area_mm2=0.0036, latency_ps=429,
                            row_write_ps=350, column_clear_ps=350,
                            power_w=0.03),
    "Age Matrix (ROB)": dict(area_mm2=0.014, latency_ps=493,
                             row_write_ps=406, column_clear_ps=406,
                             power_w=0.02),
    "Memory Disambiguation Matrix": dict(area_mm2=0.002, latency_ps=364,
                                         row_write_ps=305,
                                         column_clear_ps=305,
                                         power_w=0.06),
    "Wakeup Matrix": dict(area_mm2=0.0036, latency_ps=429,
                          row_write_ps=350, column_clear_ps=350,
                          power_w=0.03),
}


@dataclass
class Table2Row:
    name: str
    size: str
    banks: int
    area_mm2: float
    latency_ps: float
    row_write_ps: float
    column_clear_ps: float
    power_w: float


def table2(matrices: Optional[List[MatrixSpec]] = None,
           tech: Technology = TECH_28NM) -> List[Table2Row]:
    rows = []
    for spec in matrices if matrices is not None else TABLE2_MATRICES:
        array = spec.array(tech)
        rows.append(Table2Row(
            name=spec.name, size=f"{spec.rows} x {spec.cols}",
            banks=spec.banks, area_mm2=array.area_mm2(),
            latency_ps=array.read_latency_ps(),
            row_write_ps=array.row_write_ps(),
            column_clear_ps=array.column_clear_ps(),
            power_w=array.power_w(spec.ops_per_cycle,
                                  spec.writes_per_cycle,
                                  active_rows=spec.active_rows)))
    return rows


def format_table2(rows: Optional[List[Table2Row]] = None,
                  include_paper: bool = True) -> str:
    rows = rows if rows is not None else table2()
    lines = ["Table 2: Memory Parameters (modelled vs paper)"]
    header = (f"{'Parameter':34s} {'Size':10s} {'Bank':>4s} "
              f"{'Area mm2':>10s} {'Lat ps':>8s} {'RowW ps':>8s} "
              f"{'ColC ps':>8s} {'Power W':>8s}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.name:34s} {row.size:10s} {row.banks:>4d} "
            f"{row.area_mm2:>10.4f} {row.latency_ps:>8.0f} "
            f"{row.row_write_ps:>8.0f} {row.column_clear_ps:>8.0f} "
            f"{row.power_w:>8.3f}")
        paper = PAPER_TABLE2.get(row.name) if include_paper else None
        if paper:
            lines.append(
                f"{'  (paper)':34s} {'':10s} {'':>4s} "
                f"{paper['area_mm2']:>10.4f} {paper['latency_ps']:>8.0f} "
                f"{paper['row_write_ps']:>8.0f} "
                f"{paper['column_clear_ps']:>8.0f} "
                f"{paper['power_w']:>8.3f}")
    return "\n".join(lines)


@dataclass
class OverheadReport:
    matrix_area_mm2: float
    matrix_power_w: float
    core_area_mm2: float
    core_power_w: float
    area_overhead: float
    power_overhead: float
    dynamic_logic_area_ratio: float
    static_logic_max_size: int
    collapsible_power_w: float
    collapsible_ratio_vs_age: float
    merging_savings: float

    def format(self) -> str:
        return "\n".join([
            "Overhead (paper §6.3: 0.3% area, 0.6% power, 3.75x vs "
            "dynamic logic, collapsible IQ ~2.1 W / ~70x age matrix, "
            "merging saves ~40%)",
            f"  matrix schedulers: {self.matrix_area_mm2:.4f} mm2, "
            f"{self.matrix_power_w:.3f} W",
            f"  area overhead:  {self.area_overhead:.2%}",
            f"  power overhead: {self.power_overhead:.2%}",
            f"  dynamic-logic area ratio: "
            f"{self.dynamic_logic_area_ratio:.2f}x",
            f"  static logic feasible up to: "
            f"{self.static_logic_max_size}x{self.static_logic_max_size}",
            f"  collapsible 96-entry IQ: {self.collapsible_power_w:.2f} W "
            f"({self.collapsible_ratio_vs_age:.0f}x the age matrix)",
            f"  age/commit matrix merging saves: {self.merging_savings:.1%}",
        ])


def overhead_report(core: CoreCostModel = CORE_22NM,
                    tech: Technology = TECH_28NM) -> OverheadReport:
    rows = table2(tech=tech)
    total_area = sum(row.area_mm2 for row in rows)
    total_power = sum(row.power_w for row in rows)
    iq_age = rows[0]
    dynamic = DynamicLogicMatrix(96, 96, tech)
    static = StaticLogicMatrix(96, 96, tech)
    shift = CollapsibleQueueCost(96, tech=tech)
    # merging (§3.2): one merged ROB matrix + SPEC vector instead of an
    # age matrix plus a commit dependency matrix of the same size
    rob_array = SRAM8TArray(224, 224, 4, tech=tech)
    spec_vector_area = 224 * tech.cell_area_um2 * 8 / 1e6
    merged = rob_array.area_mm2() + spec_vector_area
    separate = 2 * rob_array.area_mm2()
    return OverheadReport(
        matrix_area_mm2=total_area,
        matrix_power_w=total_power,
        core_area_mm2=core.area_mm2,
        core_power_w=core.power_w,
        area_overhead=total_area / core.area_mm2,
        power_overhead=total_power / core.power_w,
        dynamic_logic_area_ratio=dynamic.area_ratio_vs_pim(),
        static_logic_max_size=static.max_feasible_size(),
        collapsible_power_w=shift.power_w(),
        collapsible_ratio_vs_age=shift.ratio_vs_age_matrix(iq_age.power_w),
        merging_savings=1.0 - merged / separate)


@dataclass
class ScalabilityRow:
    rows: int
    cols: int
    latency_ps: float
    meets_2ghz: bool
    required_splits: int
    split_latency_ps: float


def scalability_report(sizes=((96, 96), (224, 224), (256, 256),
                              (512, 512)),
                       tech: Technology = TECH_28NM) -> List[ScalabilityRow]:
    """§6.4: which ROB age-matrix sizes meet 2 GHz, and the vertical
    split that fixes the ones that do not."""
    out = []
    for rows, cols in sizes:
        array = SRAM8TArray(rows, cols, banks=4, tech=tech)
        splits = array.min_vertical_splits()
        split_array = SRAM8TArray(rows, cols, banks=4,
                                  vertical_splits=splits, tech=tech)
        out.append(ScalabilityRow(
            rows=rows, cols=cols, latency_ps=array.read_latency_ps(),
            meets_2ghz=array.meets_timing(), required_splits=splits,
            split_latency_ps=split_array.read_latency_ps()))
    return out


def format_scalability(rows: Optional[List[ScalabilityRow]] = None) -> str:
    rows = rows if rows is not None else scalability_report()
    lines = ["Scalability (§6.4): ROB age matrix vs 2 GHz budget"]
    for row in rows:
        status = "OK" if row.meets_2ghz else \
            f"needs x{row.required_splits} vertical split " \
            f"({row.split_latency_ps:.0f} ps)"
        lines.append(f"  {row.rows}x{row.cols}: {row.latency_ps:.0f} ps "
                     f"— {status}")
    return "\n".join(lines)
