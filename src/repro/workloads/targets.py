"""Pluggable workload targets: one registry for every trace source.

The suite used to be a closed dict of synthetic kernels; everything
downstream (cache keys, the worker rebuild protocol, lane grouping,
figure sweeps) hard-coded that shape.  A :class:`WorkloadTarget` is the
open replacement — anything that can deterministically produce a
:class:`~repro.isa.Trace` registers here and automatically joins the
sweeps, the bench, and the characterisation table:

* :class:`SyntheticTarget` — the seeded kernel generators
  (``repro.workloads.kernels``), wrapped with per-kernel scaling rules.
* :class:`TraceFileTarget` — an on-disk trace (``repro.isa.tracefile``
  format v1/v2), identified by content checksum.  Workers rebuild it
  from ``(path, sha256)`` instead of unpickling megabytes of
  ``DynInstr``.
* Scenario targets (``repro.workloads.scenarios``) — seed-deterministic
  compositions of other registered targets (SMT-style interleaving,
  pipeline-drain injection, phase switching).

Each target answers four questions the harness layers need:

``build_trace(scale)``
    The deterministic instruction stream.  Callers go through
    :func:`repro.workloads.fetch_trace`, which adds the bounded LRU
    and stamps ``trace.name``/``trace.scale``.
``fingerprint(scale)``
    A JSON-stable dict identifying the *content* of the trace — what
    the result cache keys on (two targets with equal fingerprints
    produce interchangeable simulation results).
``provenance()``
    A one-line human answer to "where did this workload come from",
    shown by ``repro kernels``.
``worker_spec()``
    A picklable recipe a spawn-fresh worker process can pass to
    :func:`ensure_target` to reconstruct the target before fetching
    its trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..isa import Program, Trace, trace_program
from ..isa.tracefile import file_sha256, load_trace, read_header

__all__ = ["WorkloadTarget", "SyntheticTarget", "TraceFileTarget",
           "add_trace_target", "ensure_target", "file_sha256", "get_target",
           "has_target", "iter_targets", "register_target", "scale_params",
           "sweep_names", "target_names", "unregister_target",
           "workload_fingerprint"]

#: emulation bound shared by every generated target
MAX_TRACE_INSTRS = 10_000_000


def scale_params(size_params: Dict[str, int], scale: float,
                 minimums: Optional[Dict[str, int]] = None) -> Dict[str, int]:
    """Scale a kernel's size parameters, clamping to per-key minimums.

    The default floor of 8 keeps degenerate traces (empty loops) out of
    the sweeps; kernels whose parameters are intrinsically small (e.g.
    ``blender.matmul`` dim=12, where a floor of 8 would swallow every
    scale below 0.7) pass explicit ``minimums``.
    """
    minimums = minimums or {}
    return {key: max(minimums.get(key, 8), int(value * scale))
            for key, value in size_params.items()}


class WorkloadTarget:
    """One registered workload: a deterministic trace source."""

    #: target family, one of ``synthetic`` / ``trace-file`` / ``scenario``
    kind: str = "target"

    def __init__(self, name: str):
        self.name = name

    # -- the contract ------------------------------------------------------

    def build_trace(self, scale: float = 1.0) -> Trace:
        """Produce the dynamic trace (deterministic in ``scale``)."""
        raise NotImplementedError

    def fingerprint(self, scale: float = 1.0) -> Dict[str, object]:
        """JSON-stable content identity — the result-cache key payload."""
        raise NotImplementedError

    def provenance(self) -> str:
        """One line: where this workload's instructions come from."""
        return self.kind

    # -- harness hooks (sane defaults) --------------------------------------

    def worker_spec(self) -> Tuple:
        """Picklable recipe for :func:`ensure_target` in a fresh worker.

        The default assumes the target is re-registered by importing
        ``repro.workloads`` (true for built-in kernels and scenarios);
        targets registered ad hoc by user code override this
        (:meth:`TraceFileTarget.worker_spec` ships path + checksum).
        """
        return ("registry", self.name)

    def cost_estimate(self, scale: float = 1.0) -> float:
        """Relative wall-clock weight (generation-parameter units).

        Feeds dispatch chunk sizing only — a bad estimate changes how
        cells share a worker round-trip, never what they compute.
        """
        return 0.0

    def sweeps(self) -> bool:
        """Whether the target joins default (``names=None``) sweeps."""
        return True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class SyntheticTarget(WorkloadTarget):
    """A seeded kernel generator from ``repro.workloads.kernels``."""

    kind = "synthetic"

    def __init__(self, name: str, factory: Callable[..., Program],
                 size_params: Dict[str, int],
                 minimums: Optional[Dict[str, int]] = None):
        super().__init__(name)
        self.factory = factory
        self.size_params = dict(size_params)
        self.minimums = dict(minimums or {})

    def params(self, scale: float = 1.0) -> Dict[str, int]:
        """The generation parameters the kernel is actually built with."""
        return scale_params(self.size_params, scale, self.minimums)

    def build_program(self, scale: float = 1.0) -> Program:
        return self.factory(**self.params(scale))

    def build_trace(self, scale: float = 1.0) -> Trace:
        return trace_program(self.build_program(scale),
                             max_instrs=MAX_TRACE_INSTRS)

    def fingerprint(self, scale: float = 1.0) -> Dict[str, object]:
        return {"kind": self.kind, "params": self.params(scale)}

    def provenance(self) -> str:
        return f"generated: kernels.{self.factory.__name__}"

    def cost_estimate(self, scale: float = 1.0) -> float:
        return float(sum(self.params(scale).values()))


class TraceFileTarget(WorkloadTarget):
    """An on-disk trace file, identified by content checksum.

    ``scale`` is meaningless for a recorded stream: ``build_trace``
    ignores it and always returns the file's full contents (the
    harness still stamps the *requested* scale on the trace so job
    bookkeeping stays uniform).  The fingerprint is the file's sha256,
    so cached results survive renames and path moves but never survive
    content edits.
    """

    kind = "trace-file"

    def __init__(self, name: str, path: Union[str, Path],
                 sha256: Optional[str] = None):
        super().__init__(name)
        self.path = Path(path)
        self.header = read_header(self.path)
        self.sha256 = file_sha256(self.path)
        if sha256 is not None and sha256 != self.sha256:
            raise ValueError(
                f"{self.path}: checksum mismatch (expected {sha256[:12]}…, "
                f"file hashes to {self.sha256[:12]}…); the trace changed "
                f"since it was registered")

    def build_trace(self, scale: float = 1.0) -> Trace:
        if file_sha256(self.path) != self.sha256:
            raise ValueError(
                f"{self.path}: trace file changed on disk since target "
                f"{self.name!r} was registered (checksum mismatch)")
        return load_trace(self.path)

    def fingerprint(self, scale: float = 1.0) -> Dict[str, object]:
        return {"kind": self.kind, "sha256": self.sha256}

    def provenance(self) -> str:
        meta = self.header.get("meta") or {}
        source = meta.get("source")
        origin = f" (recorded from {source})" if source else ""
        return f"imported: {self.path}{origin}"

    def worker_spec(self) -> Tuple:
        return ("trace-file", self.name, str(self.path), self.sha256)

    def cost_estimate(self, scale: float = 1.0) -> float:
        # suite kernels emit ~12 trace instructions per parameter unit;
        # invert that so file targets weigh like equivalent kernels
        return self.header.get("count", 0) / 12.0


# -- the registry -----------------------------------------------------------

_TARGETS: "Dict[str, WorkloadTarget]" = {}


def register_target(target: WorkloadTarget,
                    replace: bool = False) -> WorkloadTarget:
    """Add a target to the registry (``replace=False`` forbids clobber)."""
    if not replace and target.name in _TARGETS:
        raise ValueError(f"workload target {target.name!r} is already "
                         f"registered; pass replace=True to override")
    _TARGETS[target.name] = target
    return target


def unregister_target(name: str) -> None:
    """Remove a target (test hook / re-import); missing names are fine."""
    _TARGETS.pop(name, None)


def has_target(name: str) -> bool:
    return name in _TARGETS


def get_target(name: str) -> WorkloadTarget:
    try:
        return _TARGETS[name]
    except KeyError as exc:
        raise ValueError(f"unknown workload target {name!r}; "
                         f"choose from {sorted(_TARGETS)}") from exc


def target_names(kind: Optional[str] = None) -> List[str]:
    """Registered names in registration order, optionally one kind."""
    return [name for name, target in _TARGETS.items()
            if kind is None or target.kind == kind]


def iter_targets() -> List[WorkloadTarget]:
    return list(_TARGETS.values())


def sweep_names() -> List[str]:
    """Targets that join default sweeps (``build_suite(names=None)``)."""
    return [name for name, target in _TARGETS.items() if target.sweeps()]


def workload_fingerprint(name: str, scale: float = 1.0) -> Dict[str, object]:
    """Cache-key payload for a registered target (ValueError if unknown)."""
    return get_target(name).fingerprint(scale)


def add_trace_target(path: Union[str, Path], name: Optional[str] = None,
                     replace: bool = False) -> TraceFileTarget:
    """Validate a trace file and register it as a workload target.

    The default name is the header's ``name`` field prefixed with
    ``trace:`` unless that collides, falling back to the file stem.
    """
    path = Path(path)
    target = TraceFileTarget("?", path)
    if name is None:
        name = f"trace:{target.header.get('name', path.stem)}"
    target.name = name
    return register_target(target, replace=replace)


def ensure_target(spec: Tuple) -> WorkloadTarget:
    """Reconstruct a target in this process from a ``worker_spec()``.

    Worker processes are spawned fresh: built-in targets reappear when
    ``repro.workloads`` imports, but ad-hoc registrations don't travel.
    ``("registry", name)`` asserts the import-time registration exists;
    ``("trace-file", name, path, sha256)`` re-imports the file and
    verifies its checksum, failing loudly if the file changed between
    the parent registering it and the worker reading it.
    """
    kind = spec[0]
    if kind == "registry":
        return get_target(spec[1])
    if kind == "trace-file":
        _, name, path, sha256 = spec
        existing = _TARGETS.get(name)
        if isinstance(existing, TraceFileTarget) and existing.sha256 == sha256:
            return existing
        if existing is not None and not isinstance(existing, TraceFileTarget):
            raise ValueError(
                f"cannot import trace file as {name!r}: the name is held "
                f"by a {existing.kind} target")
        target = TraceFileTarget(name, path, sha256=sha256)
        return register_target(target, replace=True)
    raise ValueError(f"unknown workload spec kind {kind!r}")
