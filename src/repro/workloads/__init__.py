"""SPEC-surrogate workload kernels and the benchmark suite."""

from . import kernels
from .suite import (SUITE, build_program, build_suite, build_trace,
                    generation_params, kernel_names)
from .synthetic import SyntheticSpec

__all__ = ["SUITE", "build_program", "build_suite", "build_trace",
           "generation_params", "kernel_names", "kernels", "SyntheticSpec"]
