"""SPEC-surrogate workload kernels, targets, and the benchmark suite."""

from . import kernels
from .scenarios import DrainTarget, InterleaveTarget, PhaseTarget
from .suite import (SUITE, build_program, build_suite, build_trace,
                    clear_trace_cache, fetch_trace, generation_params,
                    kernel_names, sweep_names, trace_cache_cap,
                    trace_cache_stats)
from .synthetic import SyntheticSpec
from .targets import (SyntheticTarget, TraceFileTarget, WorkloadTarget,
                      add_trace_target, ensure_target, get_target,
                      has_target, iter_targets, register_target,
                      scale_params, target_names, unregister_target,
                      workload_fingerprint)

# litmus-shape threads from the verification campaign register as
# (non-sweeping) targets so `repro kernels` lists them and `repro run`
# can simulate a single litmus thread directly; the generator module
# self-registers on import, and the sys.modules guard breaks the cycle
# when repro.verify is what pulled this package in
import sys as _sys

if "repro.verify.generator" not in _sys.modules:
    from ..verify import generator as _litmus  # noqa: F401

__all__ = ["SUITE", "build_program", "build_suite", "build_trace",
           "clear_trace_cache", "fetch_trace", "generation_params",
           "kernel_names", "kernels", "sweep_names", "trace_cache_cap",
           "trace_cache_stats", "SyntheticSpec",
           "WorkloadTarget", "SyntheticTarget", "TraceFileTarget",
           "DrainTarget", "InterleaveTarget", "PhaseTarget",
           "add_trace_target", "ensure_target", "get_target", "has_target",
           "iter_targets", "register_target", "scale_params",
           "target_names", "unregister_target", "workload_fingerprint"]
