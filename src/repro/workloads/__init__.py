"""SPEC-surrogate workload kernels and the benchmark suite."""

from . import kernels
from .suite import (SUITE, build_program, build_suite, build_trace,
                    clear_trace_cache, fetch_trace, generation_params,
                    kernel_names, trace_cache_cap, trace_cache_stats)
from .synthetic import SyntheticSpec

__all__ = ["SUITE", "build_program", "build_suite", "build_trace",
           "clear_trace_cache", "fetch_trace", "generation_params",
           "kernel_names", "kernels", "trace_cache_cap",
           "trace_cache_stats", "SyntheticSpec"]
