"""SPEC-surrogate workload kernels, targets, and the benchmark suite."""

from . import kernels
from .scenarios import DrainTarget, InterleaveTarget, PhaseTarget
from .suite import (SUITE, build_program, build_suite, build_trace,
                    clear_trace_cache, fetch_trace, generation_params,
                    kernel_names, sweep_names, trace_cache_cap,
                    trace_cache_stats)
from .synthetic import SyntheticSpec
from .targets import (SyntheticTarget, TraceFileTarget, WorkloadTarget,
                      add_trace_target, ensure_target, get_target,
                      has_target, iter_targets, register_target,
                      scale_params, target_names, unregister_target,
                      workload_fingerprint)

__all__ = ["SUITE", "build_program", "build_suite", "build_trace",
           "clear_trace_cache", "fetch_trace", "generation_params",
           "kernel_names", "kernels", "sweep_names", "trace_cache_cap",
           "trace_cache_stats", "SyntheticSpec",
           "WorkloadTarget", "SyntheticTarget", "TraceFileTarget",
           "DrainTarget", "InterleaveTarget", "PhaseTarget",
           "add_trace_target", "ensure_target", "get_target", "has_target",
           "iter_targets", "register_target", "scale_params",
           "target_names", "unregister_target", "workload_fingerprint"]
