"""Synthetic SPEC CPU2017 surrogate kernels.

We cannot ship SPEC binaries (see DESIGN.md), so each kernel reproduces
the microarchitectural behaviour class of a SPEC application that the
paper's effects depend on: serial DRAM-missing dependence chains (mcf),
streaming FP (lbm), stencils (cactuBSSN), low-ILP reductions (nab),
mispredict-heavy control (perlbench), high-MLP irregular probes
(xalancbmk/omnetpp), mixed integer code (gcc), register-blocked FP
compute (blender), pointer updates with store-to-load traffic
(deepsjeng) and long-latency integer division (exchange2).

All kernels are deterministic: pseudo-random data comes from a seeded
LCG evaluated at build time.
"""

from __future__ import annotations

from typing import List

from ..isa import Program, ProgramBuilder

#: base addresses keep kernel footprints disjoint
_HEAP = 0x10_0000


def _lcg(seed: int):
    state = seed & 0xFFFFFFFF
    while True:
        state = (state * 1664525 + 1013904223) & 0xFFFFFFFF
        yield state >> 12      # drop the periodic low bits


def pointer_chase(nodes: int = 16384, steps: int = 600,
                  seed: int = 7) -> Program:
    """mcf-like: serial pointer chase across a >1 MB footprint.

    Each step loads the next pointer from a 64-byte-spread node — a
    dependent chain of cache misses that parks at the ROB head and
    triggers full-window stalls under in-order commit.  A little
    independent ALU work per step gives out-of-order commit something
    to retire early.
    """
    rng = _lcg(seed)
    order = list(range(1, nodes))
    # Fisher-Yates with the LCG for a deterministic random cycle
    for i in range(len(order) - 1, 0, -1):
        j = next(rng) % (i + 1)
        order[i], order[j] = order[j], order[i]
    cycle = [0] + order
    builder = ProgramBuilder("pointer_chase")
    node_addr = lambda idx: _HEAP + idx * 64
    for position, idx in enumerate(cycle):
        succ = cycle[(position + 1) % len(cycle)]
        builder.data_word(node_addr(idx), node_addr(succ))
        builder.data_word(node_addr(idx) + 8, idx)
    builder.li("x1", node_addr(cycle[0]))
    builder.li("x2", 0)            # step counter
    builder.li("x3", steps)
    builder.li("x5", 0)            # checksum
    builder.label("chase")
    builder.ld("x4", "x1", 8)      # payload
    builder.add("x5", "x5", "x4")  # independent-ish accumulation
    builder.xor("x6", "x4", "x2")
    builder.slli("x7", "x6", 1)
    builder.add("x8", "x7", "x5")
    builder.ld("x1", "x1", 0)      # the chain: next pointer
    builder.addi("x2", "x2", 1)
    builder.blt("x2", "x3", "chase")
    builder.halt()
    return builder.build()


def stream_triad(n: int = 700, seed: int = 11) -> Program:
    """lbm-like: FP triad a[i] = b[i] + s*c[i] over streaming arrays."""
    rng = _lcg(seed)
    builder = ProgramBuilder("stream_triad")
    b_base, c_base, a_base = _HEAP, _HEAP + 0x80_0000, _HEAP + 0x100_0000
    for i in range(n):
        builder.data_word(b_base + 8 * i, (next(rng) % 1000) / 10.0)
        builder.data_word(c_base + 8 * i, (next(rng) % 1000) / 10.0)
    builder.data_word(0x100, 3.5)      # the scalar s
    builder.fld("f1", "x0", 0x100)
    builder.li("x1", b_base).li("x2", c_base).li("x3", a_base)
    builder.li("x4", 0).li("x5", n)
    builder.label("triad")
    builder.fld("f2", "x1", 0)
    builder.fld("f3", "x2", 0)
    builder.fmul("f4", "f3", "f1")
    builder.fadd("f5", "f2", "f4")
    builder.fsd("f5", "x3", 0)
    builder.addi("x1", "x1", 8)
    builder.addi("x2", "x2", 8)
    builder.addi("x3", "x3", 8)
    builder.addi("x4", "x4", 1)
    builder.blt("x4", "x5", "triad")
    builder.halt()
    return builder.build()


def stencil(n: int = 600, seed: int = 13) -> Program:
    """cactuBSSN-like: 3-point stencil with neighbouring reuse."""
    rng = _lcg(seed)
    builder = ProgramBuilder("stencil")
    src, dst = _HEAP, _HEAP + 0x40_0000
    for i in range(n + 2):
        builder.data_word(src + 8 * i, (next(rng) % 100) / 4.0)
    builder.li("x1", src).li("x2", dst)
    builder.li("x3", 0).li("x4", n)
    builder.label("loop")
    builder.fld("f1", "x1", 0)
    builder.fld("f2", "x1", 8)
    builder.fld("f3", "x1", 16)
    builder.fadd("f4", "f1", "f2")
    builder.fadd("f5", "f4", "f3")
    builder.fmul("f6", "f5", "f5")
    builder.fsd("f6", "x2", 0)
    builder.addi("x1", "x1", 8)
    builder.addi("x2", "x2", 8)
    builder.addi("x3", "x3", 1)
    builder.blt("x3", "x4", "loop")
    builder.halt()
    return builder.build()


def fp_reduction(n: int = 900, seed: int = 17) -> Program:
    """nab-like: serial FP accumulation — the dependence chain limits
    ILP, so the few independent instructions are precious to schedule."""
    rng = _lcg(seed)
    builder = ProgramBuilder("fp_reduction")
    base = _HEAP
    for i in range(n):
        builder.data_word(base + 8 * i, (next(rng) % 64) / 8.0)
    builder.li("x1", base).li("x2", 0).li("x3", n)
    builder.label("loop")
    builder.fld("f2", "x1", 0)
    builder.fadd("f1", "f1", "f2")    # serial chain
    builder.fmul("f3", "f2", "f2")    # independent work
    builder.fadd("f4", "f4", "f3")    # second chain
    builder.addi("x1", "x1", 8)
    builder.addi("x2", "x2", 1)
    builder.blt("x2", "x3", "loop")
    builder.halt()
    return builder.build()


def branchy(n: int = 800, seed: int = 23) -> Program:
    """perlbench-like: data-dependent, poorly-predictable branches.

    The branch inputs are loaded with a cache-missing line stride, so a
    mispredicted branch resolves slowly and the machine spends long
    windows fetching the wrong path — the regime where age-ordered
    selection protects correct-path work (§2.1).
    """
    rng = _lcg(seed)
    builder = ProgramBuilder("branchy")
    base = _HEAP
    for i in range(n):
        builder.data_word(base + 64 * i, next(rng) % 256)
    builder.li("x1", base).li("x2", 0).li("x3", n)
    builder.li("x5", 0).li("x6", 0).li("x7", 1)
    builder.label("loop")
    builder.ld("x4", "x1", 0)
    builder.andi("x8", "x4", 1)
    builder.beq("x8", "x0", "even")
    builder.add("x5", "x5", "x4")
    builder.xor("x6", "x6", "x4")
    builder.j("next")
    builder.label("even")
    builder.sub("x5", "x5", "x4")
    builder.slli("x9", "x4", 1)
    builder.add("x6", "x6", "x9")
    builder.label("next")
    builder.andi("x10", "x4", 3)
    builder.bne("x10", "x7", "skip")
    builder.addi("x6", "x6", 7)
    builder.label("skip")
    # independent filler lanes: the correct-path work that wrong-path
    # instructions compete with for issue slots after a mispredict
    for lane in range(4):
        dst = f"x{20 + lane}"
        builder.addi(dst, "x2", lane + 1)
        builder.slli(dst, dst, 1)
        builder.xor(dst, dst, "x2")
        builder.add(dst, dst, "x2")
        builder.srli(dst, dst, 1)
        builder.add(dst, dst, "x2")
    builder.addi("x1", "x1", 64)
    builder.addi("x2", "x2", 1)
    builder.blt("x2", "x3", "loop")
    builder.halt()
    return builder.build()


def hash_probe(n: int = 1000, table_words: int = 1 << 18,
               seed: int = 31) -> Program:
    """xalancbmk/omnetpp-like: independent irregular probes over a 2 MB
    table — high memory-level parallelism gated by window capacity.
    Out-of-order commit's early ROB/LQ reclamation directly buys MLP."""
    rng = _lcg(seed)
    builder = ProgramBuilder("hash_probe")
    keys, table = _HEAP, _HEAP + 0x100_0000
    for i in range(n):
        builder.data_word(keys + 8 * i, next(rng))
    for slot in range(0, table_words, max(1, table_words // 64)):
        builder.data_word(table + 8 * slot, slot)
    builder.li("x1", keys).li("x2", 0).li("x3", n)
    builder.li("x5", table).li("x6", 0)
    builder.li("x7", 2654435761)
    builder.li("x9", (table_words - 1) * 8)
    builder.label("loop")
    builder.ld("x4", "x1", 0)
    builder.mul("x8", "x4", "x7")
    builder.srli("x8", "x8", 9)
    builder.and_("x8", "x8", "x9")     # byte offset into the table
    builder.add("x10", "x5", "x8")
    builder.ld("x11", "x10", 0)        # the probe (likely DRAM)
    builder.add("x6", "x6", "x11")
    builder.addi("x1", "x1", 8)
    builder.addi("x2", "x2", 1)
    builder.blt("x2", "x3", "loop")
    builder.halt()
    return builder.build()


def gcc_mix(n: int = 700, seed: int = 37) -> Program:
    """gcc-like: mixed integer ALU / memory / control with moderate
    predictability and an L2-sized working set."""
    rng = _lcg(seed)
    builder = ProgramBuilder("gcc_mix")
    src, dst = _HEAP, _HEAP + 0x10_0000
    for i in range(n):
        builder.data_word(src + 8 * i, next(rng) % 4096)
    builder.li("x1", src).li("x2", dst)
    builder.li("x3", 0).li("x4", n).li("x9", 100)
    builder.label("loop")
    builder.ld("x5", "x1", 0)
    builder.slli("x6", "x5", 2)
    builder.add("x6", "x6", "x5")
    builder.srli("x7", "x6", 3)
    builder.xor("x7", "x7", "x5")
    builder.blt("x7", "x9", "small")
    builder.sub("x7", "x7", "x9")
    builder.label("small")
    builder.sd("x7", "x2", 0)
    builder.addi("x1", "x1", 8)
    builder.addi("x2", "x2", 8)
    builder.addi("x3", "x3", 1)
    builder.blt("x3", "x4", "loop")
    builder.halt()
    return builder.build()


def matmul(dim: int = 12) -> Program:
    """blender-like register-blocked FP compute: L1-resident, so issue
    bandwidth and selection order dominate (priority scheduling)."""
    builder = ProgramBuilder("matmul")
    a_base, b_base, c_base = _HEAP, _HEAP + 0x1_0000, _HEAP + 0x2_0000
    for i in range(dim * dim):
        builder.data_word(a_base + 8 * i, (i % 7) + 0.5)
        builder.data_word(b_base + 8 * i, (i % 5) + 0.25)
    builder.li("x1", 0)                 # i
    builder.li("x9", dim)
    builder.label("i_loop")
    builder.li("x2", 0)                 # j
    builder.label("j_loop")
    builder.li("x3", 0)                 # k
    builder.fsub("f1", "f1", "f1")      # acc = 0
    builder.label("k_loop")
    # A[i][k]
    builder.mul("x4", "x1", "x9")
    builder.add("x4", "x4", "x3")
    builder.slli("x4", "x4", 3)
    builder.addi("x5", "x4", 0)
    builder.li("x6", a_base)
    builder.add("x5", "x5", "x6")
    builder.fld("f2", "x5", 0)
    # B[k][j]
    builder.mul("x4", "x3", "x9")
    builder.add("x4", "x4", "x2")
    builder.slli("x4", "x4", 3)
    builder.li("x6", b_base)
    builder.add("x4", "x4", "x6")
    builder.fld("f3", "x4", 0)
    builder.fmul("f4", "f2", "f3")
    builder.fadd("f1", "f1", "f4")
    builder.addi("x3", "x3", 1)
    builder.blt("x3", "x9", "k_loop")
    # C[i][j] = acc
    builder.mul("x4", "x1", "x9")
    builder.add("x4", "x4", "x2")
    builder.slli("x4", "x4", 3)
    builder.li("x6", c_base)
    builder.add("x4", "x4", "x6")
    builder.fsd("f1", "x4", 0)
    builder.addi("x2", "x2", 1)
    builder.blt("x2", "x9", "j_loop")
    builder.addi("x1", "x1", 1)
    builder.blt("x1", "x9", "i_loop")
    builder.halt()
    return builder.build()


def list_update(nodes: int = 64, steps: int = 700,
                seed: int = 41) -> Program:
    """deepsjeng-like: pointer walk that also *stores* to each node —
    store-to-load forwarding and disambiguation traffic."""
    rng = _lcg(seed)
    order = list(range(1, nodes))
    for i in range(len(order) - 1, 0, -1):
        j = next(rng) % (i + 1)
        order[i], order[j] = order[j], order[i]
    cycle = [0] + order
    builder = ProgramBuilder("list_update")
    node_addr = lambda idx: _HEAP + idx * 128  # 64 KB: cache-resident walk
    for position, idx in enumerate(cycle):
        succ = cycle[(position + 1) % len(cycle)]
        builder.data_word(node_addr(idx), node_addr(succ))
        builder.data_word(node_addr(idx) + 8, idx * 3)
    builder.li("x1", node_addr(cycle[0]))
    builder.li("x2", 0).li("x3", steps).li("x5", 0)
    builder.label("walk")
    builder.ld("x4", "x1", 8)       # payload
    builder.addi("x4", "x4", 1)
    builder.sd("x4", "x1", 8)       # update payload
    builder.ld("x6", "x1", 8)       # reload (forwarded from the store)
    builder.add("x5", "x5", "x6")
    builder.ld("x1", "x1", 0)       # next
    builder.addi("x2", "x2", 1)
    builder.blt("x2", "x3", "walk")
    builder.halt()
    return builder.build()


def div_chain(n: int = 500, seed: int = 43) -> Program:
    """exchange2-like: long-latency integer divides at the window head
    with plenty of younger independent work — the canonical case where
    in-order commit needlessly holds resources."""
    rng = _lcg(seed)
    builder = ProgramBuilder("div_chain")
    base = _HEAP
    for i in range(n):
        builder.data_word(base + 8 * i, (next(rng) % 1000) + 17)
    builder.li("x1", base).li("x2", 0).li("x3", n)
    builder.li("x7", 7).li("x10", 0)
    builder.label("loop")
    builder.ld("x4", "x1", 0)
    builder.div("x5", "x4", "x7")       # slow, blocks the head
    builder.rem("x6", "x4", "x7")
    builder.add("x8", "x4", "x2")       # independent younger work
    builder.slli("x9", "x8", 2)
    builder.xor("x10", "x10", "x9")
    builder.add("x11", "x10", "x8")
    builder.srli("x12", "x11", 1)
    builder.add("x10", "x10", "x5")
    builder.add("x10", "x10", "x6")
    builder.addi("x1", "x1", 8)
    builder.addi("x2", "x2", 1)
    builder.blt("x2", "x3", "loop")
    builder.halt()
    return builder.build()


def tree_search(nodes_log2: int = 18, queries: int = 60, depth: int = 16,
                seed: int = 47) -> Program:
    """omnetpp-like: binary-search descent over a 2 MB heap-layout tree.

    Every step loads a key from a (usually missing) node and branches
    directly on it — the pattern where commit is blocked by *branches*
    awaiting slow loads.  BR/NOREBA-style commit (skip unresolved
    branches) and ECL (commit the loads early) both pay off here.
    """
    rng = _lcg(seed)
    builder = ProgramBuilder("tree_search")
    table = _HEAP
    nodes = 1 << nodes_log2
    # sparse init: only sampled nodes get explicit keys; others read 0
    for slot in range(0, nodes, max(1, nodes // 128)):
        builder.data_word(table + 8 * slot, next(rng) % 4096)
    builder.li("x1", 0)               # query counter
    builder.li("x2", queries)
    builder.li("x5", table)
    builder.li("x9", 2048)            # search target
    builder.li("x12", nodes - 1)
    builder.label("query")
    # start index derived from the query counter (pseudo-random root path)
    builder.mul("x3", "x1", "x1")
    builder.addi("x3", "x3", 1)
    builder.and_("x3", "x3", "x12")
    builder.li("x4", 0)               # depth counter
    builder.li("x10", depth)
    builder.label("descend")
    builder.slli("x6", "x3", 3)
    builder.add("x6", "x6", "x5")
    builder.ld("x7", "x6", 0)         # node key (often DRAM)
    builder.slli("x3", "x3", 1)
    builder.blt("x7", "x9", "left")   # branch on the loaded key
    builder.addi("x3", "x3", 2)       # right child
    builder.j("step")
    builder.label("left")
    builder.addi("x3", "x3", 1)       # left child
    builder.label("step")
    builder.and_("x3", "x3", "x12")
    builder.addi("x4", "x4", 1)
    builder.blt("x4", "x10", "descend")
    builder.addi("x1", "x1", 1)
    builder.blt("x1", "x2", "query")
    builder.halt()
    return builder.build()


def multi_chase(nodes: int = 16384, steps: int = 400, chains: int = 2,
                seed: int = 53) -> Program:
    """mcf-like: sparse serial chains plus window-limited indexed misses.

    Two serial pointer chains set the latency floor; one LCG-indexed
    DRAM load per iteration plus a block of independent ALU work make
    memory-level parallelism *window-limited*: in-order commit holds the
    completed ALU work (and its registers/ROB entries) hostage behind
    the chains, capping how many future indexed misses fit in the
    window.  Out-of-order commit reclaims them and overlaps more.
    """
    rng = _lcg(seed)
    builder = ProgramBuilder("multi_chase")
    node_addr = lambda idx: _HEAP + idx * 64
    per_chain = nodes // chains
    starts = []
    for chain in range(chains):
        lo = chain * per_chain
        order = list(range(lo + 1, lo + per_chain))
        for i in range(len(order) - 1, 0, -1):
            j = next(rng) % (i + 1)
            order[i], order[j] = order[j], order[i]
        cycle = [lo] + order
        for position, idx in enumerate(cycle):
            succ = cycle[(position + 1) % len(cycle)]
            builder.data_word(node_addr(idx), node_addr(succ))
            builder.data_word(node_addr(idx) + 8, idx)
        starts.append(node_addr(cycle[0]))
    regs = ["x20", "x21", "x22", "x23"]
    for chain in range(chains):
        builder.li(regs[chain], starts[chain])
    builder.li("x1", 0).li("x2", steps).li("x5", 0)
    builder.li("x28", 12345)              # in-register LCG state
    builder.li("x29", 1664525)
    builder.li("x31", _HEAP)
    builder.li("x30", nodes - 1)
    builder.label("chase")
    for chain in range(chains):
        builder.ld(regs[chain], regs[chain], 0)
    # indexed load: address computable arbitrarily far ahead
    builder.mul("x28", "x28", "x29")
    builder.addi("x28", "x28", 1013904223)
    builder.srli("x6", "x28", 14)
    builder.and_("x6", "x6", "x30")
    builder.slli("x6", "x6", 6)
    builder.add("x6", "x6", "x31")
    builder.ld("x8", "x6", 8)
    builder.add("x5", "x5", "x8")
    # independent ALU block (reseeded from the loop counter each
    # iteration, so iterations do not chain through it)
    for lane in range(4):
        dst = f"x{10 + lane}"
        builder.addi(dst, "x1", lane + 1)
        builder.slli(dst, dst, 2)
        builder.xor(dst, dst, "x1")
        builder.add(dst, dst, "x1")
        builder.srli(dst, dst, 1)
        builder.add(dst, dst, "x1")
    builder.addi("x1", "x1", 1)
    builder.blt("x1", "x2", "chase")
    builder.halt()
    return builder.build()


def mixed_chains(iters: int = 600, table: int = 4096,
                 seed: int = 61) -> Program:
    """leela-like: several serial dependence chains of *different*
    execution types under frequent hard-to-predict branches.

    After each mispredict the machine fetches the wrong path; issue
    selection decides whether the chains' ready instructions beat the
    wrong-path flood to the execution units.  AGE protects one chain,
    MULT one per type, Orinoco all of them — reproducing the Figure 14
    ordering.
    """
    rng = _lcg(seed)
    builder = ProgramBuilder("mixed_chains")
    table_base = _HEAP
    for i in range(table):
        builder.data_word(table_base + 8 * i, next(rng) % 256)
    feed = _HEAP + 0x100_0000
    for lane in range(4):
        builder.data_block(feed + lane * 0x1_0000, [lane + 1.0] * 64)
    builder.li("x1", 0).li("x2", iters).li("x3", table_base)
    builder.li("x9", (table - 1) * 8)
    # integer chains (4)
    for lane in range(4):
        builder.li(f"x{10 + lane}", lane)
    builder.label("loop")
    for lane in range(4):
        acc, tmp = f"x{10 + lane}", f"x{20 + lane}"
        builder.ld(tmp, "x0", feed + (lane % 4) * 0x1_0000)
        builder.add(acc, acc, tmp)
        builder.xor(acc, acc, "x1")
        builder.add(acc, acc, tmp)
    # multiply chain
    builder.ld("x24", "x0", feed + 2 * 0x1_0000)
    builder.mul("x14", "x14", "x24")
    builder.addi("x14", "x14", 3)
    # floating-point chains (3)
    for lane in range(3):
        acc, tmp = f"f{1 + lane}", f"f{10 + lane}"
        builder.fld(tmp, "x0", feed + (lane % 4) * 0x1_0000 + 8 * lane)
        builder.fadd(acc, acc, tmp)
        builder.fadd(acc, acc, tmp)
    # hard-to-predict, fast-resolving branch
    builder.slli("x5", "x1", 3)
    builder.and_("x5", "x5", "x9")
    builder.add("x5", "x5", "x3")
    builder.ld("x6", "x5", 0)
    builder.andi("x6", "x6", 1)
    builder.beq("x6", "x0", "skip")
    builder.addi("x7", "x7", 1)
    builder.label("skip")
    builder.addi("x1", "x1", 1)
    builder.blt("x1", "x2", "loop")
    builder.halt()
    return builder.build()


def strided_fp(n: int = 900, stride_lines: int = 7, seed: int = 67) -> Program:
    """fotonik3d-like: strided FP gathers over a multi-megabyte grid.

    Addresses are computable arbitrarily far ahead but the stride
    defeats the stream prefetcher, so memory-level parallelism is
    limited purely by how many future loads fit in the window — the
    cleanest early-issue / late-perform case for out-of-order commit.
    """
    builder = ProgramBuilder("strided_fp")
    grid = _HEAP
    builder.data_block(grid, [1.25] * 8)
    builder.li("x1", 0).li("x2", n)
    builder.li("x4", grid)
    builder.li("x5", stride_lines * 64)
    builder.li("x6", (1 << 22) - 1)        # 4 MB footprint mask
    builder.label("loop")
    builder.mul("x7", "x1", "x5")
    builder.and_("x7", "x7", "x6")
    builder.add("x7", "x7", "x4")
    builder.fld("f2", "x7", 0)
    builder.fmul("f3", "f2", "f2")
    builder.fadd("f1", "f1", "f3")
    builder.addi("x1", "x1", 1)
    builder.blt("x1", "x2", "loop")
    builder.halt()
    return builder.build()
