"""The benchmark suite: target registry wiring, scaling, trace caching.

The suite is no longer a closed dict: every workload is a
:class:`~repro.workloads.targets.WorkloadTarget` in the shared
registry — the synthetic kernels register here at import, the stock
scenario families (``repro.workloads.scenarios``) right after, and
trace-file targets whenever a user imports one
(:func:`~repro.workloads.targets.add_trace_target`).  ``SUITE`` remains
as a compatibility view over the synthetic kernels.

This module owns two things the registry deliberately doesn't:

* the bounded trace LRU (:func:`fetch_trace`) keyed on target identity
  ``(name, scale)``, shared by the serial path, the lane engine, and
  every worker process;
* suite-level enumeration (:func:`build_suite`, :func:`sweep_names`) —
  default sweeps cover *every* sweep-eligible registered target, so a
  newly registered target automatically joins the figures, the bench,
  and the characterisation table.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..envutil import env_int
from ..isa import Program, Trace
from . import kernels
from .targets import (SyntheticTarget, get_target, register_target,
                      scale_params)
from .targets import sweep_names as _registry_sweep_names

#: (name, factory, size params, per-kernel scaling minimums) — names
#: carry the SPEC CPU2017 application each kernel stands in for.
#: ``blender.matmul``'s dim floors at 4, not the default 8: a dim-12
#: kernel floored at 8 would ignore every scale below 0.7.
_KERNEL_SPECS = (
    ("mcf.chase", kernels.pointer_chase, {"steps": 600}, None),
    ("lbm.stream", kernels.stream_triad, {"n": 700}, None),
    ("cactu.stencil", kernels.stencil, {"n": 600}, None),
    ("nab.reduce", kernels.fp_reduction, {"n": 900}, None),
    ("perl.branchy", kernels.branchy, {"n": 800}, None),
    ("xalanc.hash", kernels.hash_probe, {"n": 1000}, None),
    ("gcc.mix", kernels.gcc_mix, {"n": 700}, None),
    ("blender.matmul", kernels.matmul, {"dim": 12}, {"dim": 4}),
    ("sjeng.listupd", kernels.list_update, {"steps": 700}, None),
    ("x264.divint", kernels.div_chain, {"n": 500}, None),
    ("omnet.tree", kernels.tree_search, {"queries": 60}, None),
    ("leela.chains", kernels.mixed_chains, {"iters": 600}, None),
    ("fotonik.strided", kernels.strided_fp, {"n": 900}, None),
    ("mcf.multichase", kernels.multi_chase, {"steps": 400}, None),
)


def _suite_entry(target: SyntheticTarget) -> Callable[[float], Program]:
    def build(scale: float = 1.0) -> Program:
        return target.build_program(scale)
    build.size_params = dict(target.size_params)
    build.target = target
    return build


#: compatibility view: kernel name -> builder taking a ``scale`` factor
SUITE: Dict[str, Callable[[float], Program]] = {}
for _name, _factory, _size, _mins in _KERNEL_SPECS:
    _target = register_target(
        SyntheticTarget(_name, _factory, _size, minimums=_mins),
        replace=True)
    SUITE[_name] = _suite_entry(_target)
del _name, _factory, _size, _mins, _target

# stock scenario families compose the kernels registered above, so
# their registration must come second
from . import scenarios as _scenarios          # noqa: E402
_scenarios.register_default_scenarios()


# traces are megabytes of DynInstr, so the cache is a bounded LRU:
# chunked harness dispatch affines same-workload cells to one process,
# which keeps the working set small and the hit rate high even with a
# handful of slots.  ``$REPRO_TRACE_CACHE`` overrides the bound.
_trace_cache: "OrderedDict[tuple, Trace]" = OrderedDict()
_trace_hits = 0
_trace_misses = 0


def trace_cache_cap() -> int:
    """Trace-LRU bound from ``$REPRO_TRACE_CACHE`` (entries, min 1)."""
    return max(1, env_int("REPRO_TRACE_CACHE", 16))


def trace_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters for this process's trace LRU."""
    return {"hits": _trace_hits, "misses": _trace_misses,
            "entries": len(_trace_cache)}


def clear_trace_cache() -> None:
    """Drop every cached trace and re-arm the counters (test hook)."""
    global _trace_hits, _trace_misses
    _trace_cache.clear()
    _trace_hits = 0
    _trace_misses = 0


def kernel_names() -> List[str]:
    """The synthetic kernel names (the classic suite view)."""
    return list(SUITE)


def sweep_names() -> List[str]:
    """Every registered target a default sweep covers (all kinds)."""
    return _registry_sweep_names()


def generation_params(name: str, scale: float = 1.0) -> Dict[str, int]:
    """The scaled size parameters a synthetic kernel is built with.

    Reflects the *actual* built size (per-kernel minimums included).
    Only synthetic targets have generation parameters; other kinds
    raise ``ValueError`` (their cache identity is the target
    fingerprint instead).
    """
    target = get_target(name)
    if not isinstance(target, SyntheticTarget):
        raise ValueError(f"target {name!r} is {target.kind}; only "
                         f"synthetic kernels have generation parameters")
    return target.params(scale)


def build_program(name: str, scale: float = 1.0) -> Program:
    target = get_target(name)
    if not isinstance(target, SyntheticTarget):
        raise ValueError(f"target {name!r} is {target.kind}; only "
                         f"synthetic kernels build a Program")
    return target.build_program(scale)


def _stamped(trace: Trace, name: str, scale: float) -> Trace:
    """Stamp suite bookkeeping onto a freshly built trace.

    ``name``/``scale`` are what the harness keys on (job construction,
    cache keys, worker rebuilds) — every trace the suite hands out must
    carry them, whichever path built it.
    """
    trace.name = name
    trace.scale = scale
    return trace


def fetch_trace(name: str, scale: float = 1.0) -> Tuple[Trace, bool]:
    """``(trace, was_cache_hit)`` through the bounded LRU.

    The hit flag feeds the harness's per-cell trace-cache accounting
    (``SuiteResult.trace_hits``); callers that don't care use
    :func:`build_trace`.
    """
    global _trace_hits, _trace_misses
    key = (name, scale)
    trace = _trace_cache.get(key)
    if trace is not None:
        _trace_cache.move_to_end(key)
        _trace_hits += 1
        return trace, True
    _trace_misses += 1
    trace = _stamped(get_target(name).build_trace(scale), name, scale)
    _trace_cache[key] = trace
    cap = trace_cache_cap()
    while len(_trace_cache) > cap:
        _trace_cache.popitem(last=False)
    return trace, False


def build_trace(name: str, scale: float = 1.0,
                use_cache: bool = True) -> Trace:
    """Build any registered target's trace (LRU-cached by default).

    Traces are shared objects; runs that mutate per-instruction tags
    (criticality) must clear them afterwards
    (:func:`repro.criticality.clear_tags`).
    """
    if not use_cache:
        return _stamped(get_target(name).build_trace(scale), name, scale)
    return fetch_trace(name, scale)[0]


def build_suite(scale: float = 1.0,
                names: Optional[List[str]] = None) -> Dict[str, Trace]:
    """Traces for every sweep-eligible target (or an explicit subset)."""
    selected = names if names is not None else sweep_names()
    return {name: build_trace(name, scale) for name in selected}
