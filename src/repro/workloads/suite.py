"""The benchmark suite: kernel registry, scaling, and trace caching."""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..envutil import env_int
from ..isa import Program, Trace, trace_program
from . import kernels


def _scaled(factory: Callable[..., Program], **size_params):
    def build(scale: float = 1.0) -> Program:
        return factory(**scale_params(size_params, scale))
    build.size_params = dict(size_params)
    return build


def scale_params(size_params: Dict[str, int],
                 scale: float) -> Dict[str, int]:
    return {key: max(8, int(value * scale))
            for key, value in size_params.items()}


#: kernel name -> builder taking a ``scale`` factor.  Names carry the
#: SPEC CPU2017 application each kernel stands in for.
SUITE: Dict[str, Callable[[float], Program]] = {
    "mcf.chase": _scaled(kernels.pointer_chase, steps=600),
    "lbm.stream": _scaled(kernels.stream_triad, n=700),
    "cactu.stencil": _scaled(kernels.stencil, n=600),
    "nab.reduce": _scaled(kernels.fp_reduction, n=900),
    "perl.branchy": _scaled(kernels.branchy, n=800),
    "xalanc.hash": _scaled(kernels.hash_probe, n=1000),
    "gcc.mix": _scaled(kernels.gcc_mix, n=700),
    "blender.matmul": _scaled(kernels.matmul, dim=12),
    "sjeng.listupd": _scaled(kernels.list_update, steps=700),
    "x264.divint": _scaled(kernels.div_chain, n=500),
    "omnet.tree": _scaled(kernels.tree_search, queries=60),
    "leela.chains": _scaled(kernels.mixed_chains, iters=600),
    "fotonik.strided": _scaled(kernels.strided_fp, n=900),
    "mcf.multichase": _scaled(kernels.multi_chase, steps=400),
}

# traces are megabytes of DynInstr, so the cache is a bounded LRU:
# chunked harness dispatch affines same-workload cells to one process,
# which keeps the working set small and the hit rate high even with a
# handful of slots.  ``$REPRO_TRACE_CACHE`` overrides the bound.
_trace_cache: "OrderedDict[tuple, Trace]" = OrderedDict()
_trace_hits = 0
_trace_misses = 0


def trace_cache_cap() -> int:
    """Trace-LRU bound from ``$REPRO_TRACE_CACHE`` (entries, min 1)."""
    return max(1, env_int("REPRO_TRACE_CACHE", 16))


def trace_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters for this process's trace LRU."""
    return {"hits": _trace_hits, "misses": _trace_misses,
            "entries": len(_trace_cache)}


def clear_trace_cache() -> None:
    """Drop every cached trace and re-arm the counters (test hook)."""
    global _trace_hits, _trace_misses
    _trace_cache.clear()
    _trace_hits = 0
    _trace_misses = 0


def kernel_names() -> List[str]:
    return list(SUITE)


def generation_params(name: str, scale: float = 1.0) -> Dict[str, int]:
    """The scaled size parameters a kernel would be generated with.

    This is what the result cache keys on: two traces built from the
    same (name, params) pair are identical, so their simulation results
    are interchangeable.
    """
    try:
        build = SUITE[name]
    except KeyError as exc:
        raise ValueError(f"unknown kernel {name!r}; "
                         f"choose from {sorted(SUITE)}") from exc
    return scale_params(getattr(build, "size_params", {}), scale)


def build_program(name: str, scale: float = 1.0) -> Program:
    try:
        factory = SUITE[name]
    except KeyError as exc:
        raise ValueError(f"unknown kernel {name!r}; "
                         f"choose from {sorted(SUITE)}") from exc
    return factory(scale)


def fetch_trace(name: str, scale: float = 1.0) -> Tuple[Trace, bool]:
    """``(trace, was_cache_hit)`` through the bounded LRU.

    The hit flag feeds the harness's per-cell trace-cache accounting
    (``SuiteResult.trace_hits``); callers that don't care use
    :func:`build_trace`.
    """
    global _trace_hits, _trace_misses
    key = (name, scale)
    trace = _trace_cache.get(key)
    if trace is not None:
        _trace_cache.move_to_end(key)
        _trace_hits += 1
        return trace, True
    _trace_misses += 1
    trace = trace_program(build_program(name, scale),
                          max_instrs=10_000_000)
    trace.name = name
    trace.scale = scale
    _trace_cache[key] = trace
    cap = trace_cache_cap()
    while len(_trace_cache) > cap:
        _trace_cache.popitem(last=False)
    return trace, False


def build_trace(name: str, scale: float = 1.0,
                use_cache: bool = True) -> Trace:
    """Emulate the kernel and return its dynamic trace (LRU-cached).

    Traces are shared objects; runs that mutate per-instruction tags
    (criticality) must clear them afterwards
    (:func:`repro.criticality.clear_tags`).
    """
    if not use_cache:
        trace = trace_program(build_program(name, scale),
                              max_instrs=10_000_000)
        trace.name = name
        trace.scale = scale
        return trace
    return fetch_trace(name, scale)[0]


def build_suite(scale: float = 1.0,
                names: Optional[List[str]] = None) -> Dict[str, Trace]:
    """Traces for the whole suite (or a subset)."""
    selected = names if names is not None else kernel_names()
    return {name: build_trace(name, scale) for name in selected}
