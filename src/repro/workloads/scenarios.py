"""Generated scenario families: targets composed from other targets.

The synthetic kernels each exercise one behaviour (pointer chasing,
branchy control, FP streams); real machines run *mixtures*.  These
targets compose already-registered workloads into richer, still fully
seed-deterministic scenarios:

* :class:`InterleaveTarget` — SMT-style multi-program interleaving:
  the component streams are merged round-robin in LCG-drawn blocks,
  with per-program pc and address offsets so predictor state and
  memory disambiguation see disjoint contexts.
* :class:`DrainTarget` — syscall/interrupt-like pipeline drains: the
  component stream with ``fault=True`` flipped on periodically chosen
  memory ops, each of which the core handles as a precise exception
  (squash at ROB head, refetch past it) — the closest trace-driven
  analogue of a trap.
* :class:`PhaseTarget` — phase-switching workloads: alternating
  contiguous slices of the components, modelling programs whose
  behaviour class changes mid-run (the case that defeats
  steady-state-tuned predictors and schedulers).

Composition invariants (the timing model *requires* the first one):

1. ``DynInstr.seq`` equals the record's index in the composed trace —
   ``FetchUnit.squash_to`` and ``Trace.__getitem__`` are index-based.
2. Component pcs/next_pcs are rebased by disjoint strides so BTB and
   branch-history state never aliases across programs.
3. Component memory addresses are rebased by disjoint strides so the
   LSQ never sees cross-program dependences that the source programs
   didn't have.
4. Records are fresh ``DynInstr`` objects — component traces live in
   the shared LRU and must never be mutated through a scenario.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..isa import DynInstr, Trace
from .targets import WorkloadTarget, get_target, register_target

__all__ = ["DrainTarget", "InterleaveTarget", "PhaseTarget",
           "register_default_scenarios"]

#: pc rebase stride between interleaved programs (static pcs are small
#: instruction indices, so 2^20 keeps every program's window disjoint)
PC_STRIDE = 1 << 20
#: address rebase stride (far above every kernel's heap footprint)
ADDR_STRIDE = 1 << 32


def _lcg(seed: int) -> Iterator[int]:
    """Deterministic 31-bit stream (numerical-recipes constants)."""
    state = seed & 0x7FFFFFFF or 1
    while True:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        yield state


def _rebased(instr: DynInstr, seq: int, program: int) -> DynInstr:
    """A fresh record at position ``seq``, shifted into program's space."""
    pc_base = program * PC_STRIDE
    addr_base = program * ADDR_STRIDE
    return DynInstr(
        seq=seq, pc=instr.pc + pc_base, opcode=instr.opcode,
        op_class=instr.op_class, dst=instr.dst, srcs=instr.srcs,
        imm=instr.imm,
        addr=None if instr.addr is None else instr.addr + addr_base,
        taken=instr.taken, next_pc=instr.next_pc + pc_base,
        fault=instr.fault, critical=False)


def _component_traces(components: Sequence[str],
                      scale: float) -> List[Trace]:
    # late import: suite owns the LRU and imports this module at load
    from .suite import fetch_trace
    return [fetch_trace(name, scale)[0] for name in components]


class ScenarioTarget(WorkloadTarget):
    """Base for composed targets; components resolve via the registry."""

    kind = "scenario"

    def __init__(self, name: str, components: Sequence[str], seed: int):
        super().__init__(name)
        self.components = tuple(components)
        self.seed = seed

    def family(self) -> str:
        raise NotImplementedError

    def _knobs(self) -> Dict[str, object]:
        """Family-specific fingerprint fields beyond seed/components."""
        return {}

    def fingerprint(self, scale: float = 1.0) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind, "family": self.family(), "seed": self.seed,
            "components": [get_target(name).fingerprint(scale)
                           for name in self.components]}
        payload.update(self._knobs())
        return payload

    def provenance(self) -> str:
        return (f"scenario: {self.family()} of "
                f"{', '.join(self.components)} (seed {self.seed})")

    def cost_estimate(self, scale: float = 1.0) -> float:
        return sum(get_target(name).cost_estimate(scale)
                   for name in self.components)


class InterleaveTarget(ScenarioTarget):
    """SMT-style round-robin merge of component streams."""

    def __init__(self, name: str, components: Sequence[str],
                 block: Tuple[int, int] = (8, 32), seed: int = 11):
        super().__init__(name, components, seed)
        self.block = (max(1, block[0]), max(block))

    def family(self) -> str:
        return "interleave"

    def _knobs(self) -> Dict[str, object]:
        return {"block": list(self.block)}

    def build_trace(self, scale: float = 1.0) -> Trace:
        streams = _component_traces(self.components, scale)
        cursors = [0] * len(streams)
        rng = _lcg(self.seed)
        lo, hi = self.block
        merged: List[DynInstr] = []
        queue = deque(range(len(streams)))
        while queue:
            program = queue.popleft()
            take = lo + next(rng) % (hi - lo + 1)
            stream, cursor = streams[program], cursors[program]
            for instr in stream.instrs[cursor:cursor + take]:
                merged.append(_rebased(instr, len(merged), program))
            cursors[program] = cursor + take
            if cursors[program] < len(stream):
                queue.append(program)
        return Trace(merged, name=self.name)


class DrainTarget(ScenarioTarget):
    """Periodic fault injection: syscall/interrupt-like pipeline drains.

    Every roughly ``interval`` dynamic instructions (LCG-jittered so
    drains don't phase-lock with loop bodies), the next memory op has
    ``fault=True`` set: translation raises a page fault, the core
    drains to the ROB head, takes a precise-exception flush, and
    refetches past the op.
    """

    def __init__(self, name: str, component: str, interval: int = 300,
                 seed: int = 7):
        super().__init__(name, (component,), seed)
        self.interval = max(2, interval)

    def family(self) -> str:
        return "drain"

    def _knobs(self) -> Dict[str, object]:
        return {"interval": self.interval}

    def build_trace(self, scale: float = 1.0) -> Trace:
        source = _component_traces(self.components, scale)[0]
        rng = _lcg(self.seed)
        jitter = max(1, self.interval // 4)
        next_drain = self.interval + next(rng) % jitter
        armed = False
        records: List[DynInstr] = []
        for index, instr in enumerate(source):
            if index >= next_drain:
                armed = True
                next_drain = index + self.interval + next(rng) % jitter
            fault = instr.fault
            if armed and instr.is_mem and not fault:
                fault = True
                armed = False
            records.append(DynInstr(
                seq=index, pc=instr.pc, opcode=instr.opcode,
                op_class=instr.op_class, dst=instr.dst, srcs=instr.srcs,
                imm=instr.imm, addr=instr.addr, taken=instr.taken,
                next_pc=instr.next_pc, fault=fault, critical=False))
        return Trace(records, name=self.name)


class PhaseTarget(ScenarioTarget):
    """Alternating contiguous slices of the components (phase changes)."""

    def __init__(self, name: str, components: Sequence[str],
                 phase: int = 150, seed: int = 23):
        super().__init__(name, components, seed)
        self.phase = max(8, phase)

    def family(self) -> str:
        return "phase"

    def _knobs(self) -> Dict[str, object]:
        return {"phase": self.phase}

    def build_trace(self, scale: float = 1.0) -> Trace:
        streams = _component_traces(self.components, scale)
        cursors = [0] * len(streams)
        rng = _lcg(self.seed)
        jitter = max(1, self.phase // 3)
        merged: List[DynInstr] = []
        queue = deque(range(len(streams)))
        while queue:
            program = queue.popleft()
            length = self.phase + next(rng) % jitter
            stream, cursor = streams[program], cursors[program]
            for instr in stream.instrs[cursor:cursor + length]:
                merged.append(_rebased(instr, len(merged), program))
            cursors[program] = cursor + length
            if cursors[program] < len(stream):
                queue.append(program)
        return Trace(merged, name=self.name)


def register_default_scenarios() -> None:
    """Register the stock scenario families (idempotent via replace)."""
    for target in (
        InterleaveTarget("smt.gccdiv", ("gcc.mix", "x264.divint")),
        InterleaveTarget("smt.memfp", ("mcf.chase", "nab.reduce"),
                         block=(16, 48), seed=29),
        DrainTarget("sys.drain", "gcc.mix", interval=250),
        PhaseTarget("phase.flip", ("lbm.stream", "perl.branchy")),
    ):
        register_target(target, replace=True)
