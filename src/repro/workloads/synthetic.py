"""Parameterized synthetic workload generator.

Beyond the named SPEC-surrogate kernels, users studying a specific
regime can dial one in directly: instruction mix, ILP (parallel
dependence lanes), memory footprint, and branch predictability.

    program = SyntheticSpec(
        iterations=400, lanes=4, loads_per_iter=2,
        footprint_kb=4096, branch_entropy=0.5).build()
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import Program, ProgramBuilder

_HEAP = 0x10_0000


def _lcg(seed: int):
    state = seed & 0xFFFFFFFF
    while True:
        state = (state * 1664525 + 1013904223) & 0xFFFFFFFF
        yield state >> 12


@dataclass
class SyntheticSpec:
    """Knobs for a generated loop kernel.

    * ``lanes`` — independent ALU dependence chains per iteration (ILP);
    * ``chain_length`` — serial ops per lane per iteration;
    * ``loads_per_iter`` — pseudo-randomly indexed loads over
      ``footprint_kb`` of memory (set the footprint larger than a cache
      level to miss there);
    * ``stores_per_iter`` — streaming stores;
    * ``muls_per_iter`` / ``fp_per_iter`` — pressure on the narrow units;
    * ``branch_entropy`` — 0.0: no data-dependent branch; 1.0: a 50/50
      unpredictable branch every iteration (probability = entropy/2).
    """

    iterations: int = 300
    lanes: int = 2
    chain_length: int = 3
    loads_per_iter: int = 1
    stores_per_iter: int = 0
    muls_per_iter: int = 0
    fp_per_iter: int = 0
    footprint_kb: int = 64
    branch_entropy: float = 0.0
    seed: int = 7
    name: str = "synthetic"

    def __post_init__(self):
        if not 0.0 <= self.branch_entropy <= 1.0:
            raise ValueError("branch_entropy must be within [0, 1]")
        if self.lanes < 0 or self.lanes > 8:
            raise ValueError("lanes must be within [0, 8]")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")

    def build(self) -> Program:
        rng = _lcg(self.seed)
        b = ProgramBuilder(self.name)
        words = max(8, self.footprint_kb * 1024 // 8)
        mask = 1
        while mask * 2 <= words:
            mask *= 2
        # sparse data init (reads of uninitialized words return 0)
        table_entries = 1024
        if self.branch_entropy > 0:
            scaled = int(1000 * self.branch_entropy)
            for i in range(table_entries):
                random_entry = (next(rng) % 1000) < scaled
                b.data_word(0x8000 + 8 * i,
                            next(rng) % 2 if random_entry else 0)
        b.li("x1", 0)                     # induction variable
        b.li("x2", self.iterations)
        b.li("x3", _HEAP)                 # footprint base
        b.li("x4", (mask - 1) * 8)        # footprint index mask (bytes)
        b.li("x28", self.seed | 1)        # in-register LCG
        b.li("x29", 1664525)
        b.li("x26", 0x8000)               # branch table
        b.li("x27", (table_entries - 1) * 8)
        b.label("loop")
        # indexed loads over the footprint
        for load in range(self.loads_per_iter):
            b.mul("x28", "x28", "x29")
            b.addi("x28", "x28", 1013904223)
            b.srli("x5", "x28", 13)
            b.and_("x5", "x5", "x4")
            b.add("x5", "x5", "x3")
            b.ld(f"x{6 + load % 2}", "x5", 0)
        # streaming stores
        for store in range(self.stores_per_iter):
            b.slli("x8", "x1", 3)
            b.add("x8", "x8", "x3")
            b.sd("x1", "x8", store * 8)
        # independent ALU lanes (re-seeded from x1: no cross-iteration
        # chains, so ILP is exactly `lanes` within an iteration)
        for lane in range(self.lanes):
            dst = f"x{10 + lane}"
            b.addi(dst, "x1", lane + 1)
            for _ in range(self.chain_length - 1):
                b.xor(dst, dst, "x1")
        # narrow-unit pressure
        for mul in range(self.muls_per_iter):
            reg = f"x{20 + mul % 4}"
            b.addi(reg, "x1", mul)
            b.mul(reg, reg, reg)
        for fp in range(self.fp_per_iter):
            b.fadd(f"f{1 + fp % 4}", f"f{1 + fp % 4}", "f1")
        # data-dependent branch
        if self.branch_entropy > 0:
            b.slli("x9", "x1", 3)
            b.and_("x9", "x9", "x27")
            b.add("x9", "x9", "x26")
            b.ld("x9", "x9", 0)
            b.beq("x9", "x0", "skip")
            b.addi("x25", "x25", 1)
            b.label("skip")
        b.addi("x1", "x1", 1)
        b.blt("x1", "x2", "loop")
        b.halt()
        return b.build()
