"""Violation minimisation and replayable violation bundles.

When the campaign flags a program, the raw reproducer is rarely the
smallest one: random programs carry ops that play no part in the
ordering violation.  :func:`minimise_violation` is a greedy
delta-debugger — repeatedly try removing one op (then one whole
thread) and keep the candidate iff the *same* (model, policy) combo
still produces a disallowed outcome, looping to a fixpoint.  Each
probe is a full re-simulation through :func:`~repro.verify.campaign
.verify_program`, so the minimised program is verified-failing by
construction.

The result ships as a *violation bundle* — the crash-bundle format
(:mod:`repro.harness.diagnostics`) extended with a ``"verify"``
section holding the original and minimised programs, the witnessed
orderings, the disallowed outcomes and a ready-to-paste regression
test snippet.  ``repro replay <bundle>`` routes bundles with a
``"verify"`` section here: :func:`replay_violation` re-runs the
minimised program from the bundle alone and reports REPRODUCED /
NOT-REPRODUCED on a grep-able ``verdict:`` line.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..harness.cache import config_fingerprint
from ..harness.diagnostics import write_bundle
from ..pipeline import ENGINE_VERSION
from ..testing import faults
from .generator import MemOp, VerifyProgram, program_sha

__all__ = ["VerifyReplayReport", "minimise_and_bundle",
           "minimise_violation", "regression_snippet", "replay_violation"]

#: violation-bundle schema revision (within the crash-bundle format)
VERIFY_BUNDLE_FORMAT = 1


def _still_fails(program: VerifyProgram, model: str, policy: str,
                 lanes: int, fault_specs) -> bool:
    """Does ``program`` still violate under exactly this combo?"""
    from .campaign import verify_program
    if not program.threads or not any(program.threads):
        return False
    result = verify_program(program, lanes=lanes, fault_specs=fault_specs,
                            grid=[(model, policy)])
    return bool(result["violations"])


def _with_threads(program: VerifyProgram,
                  threads: List[tuple]) -> VerifyProgram:
    """A candidate with the same *name* (fault patterns key on the cell
    id, so renaming would decouple the probes from the failure)."""
    addrs = tuple(sorted({op.addr for ops in threads
                          for op in ops if op.addr is not None}))
    return VerifyProgram(program.name, tuple(threads),
                         addrs or program.addrs)


def minimise_violation(program: VerifyProgram, model: str, policy: str,
                       lanes: int = 1,
                       fault_specs=()) -> Tuple[VerifyProgram, int]:
    """Greedy ddmin: drop ops, then threads, to a 1-minimal failing
    program.  Returns ``(minimised, probes)``; the minimised program is
    re-verified failing on the last accepted candidate.
    """
    current = program
    probes = 0
    changed = True
    while changed:
        changed = False
        # try removing each single op (skip if it empties the program)
        for t in range(len(current.threads)):
            i = 0
            while i < len(current.threads[t]):
                threads = list(current.threads)
                ops = list(threads[t])
                del ops[i]
                threads[t] = tuple(ops)
                candidate = _with_threads(program, threads)
                probes += 1
                if _still_fails(candidate, model, policy, lanes,
                                fault_specs):
                    current = candidate
                    changed = True
                else:
                    i += 1
        # try removing whole threads
        t = 0
        while t < len(current.threads) and len(current.threads) > 1:
            threads = list(current.threads)
            del threads[t]
            candidate = _with_threads(program, threads)
            probes += 1
            if _still_fails(candidate, model, policy, lanes, fault_specs):
                current = candidate
                changed = True
            else:
                t += 1
    return current, probes


# -- the bundle --------------------------------------------------------------

def regression_snippet(program: VerifyProgram, model: str,
                       policy: str, faults_text: str = "") -> str:
    """A ready-to-paste pytest regression test for this violation."""
    ops = ",\n            ".join(
        "[" + ", ".join(
            f"MemOp({op.kind!r}, {op.addr!r}, {op.value!r}, {op.delay!r})"
            for op in thread) + "]"
        for thread in program.threads)
    fault_line = ""
    if faults_text:
        fault_line = (f"    specs = parse_fault_specs({faults_text!r})\n")
    specs_arg = "fault_specs=specs" if faults_text else "fault_specs=()"
    return f'''\
def test_verify_regression_{program.name.replace(".", "_").replace("-", "_")}():
    """Minimised consistency violation: {model}/{policy}."""
    from repro.testing.faults import parse_fault_specs
    from repro.verify.campaign import verify_program
    from repro.verify.generator import MemOp, VerifyProgram

    program = VerifyProgram(
        name={program.name!r},
        threads=tuple(tuple(ops) for ops in [
            {ops},
        ]),
        addrs={program.addrs!r})
{fault_line}    result = verify_program(program, grid=[({model!r}, {policy!r})],
                            {specs_arg})
    assert not result["violations"], result["violations"]
'''


def minimise_and_bundle(program: VerifyProgram, violation: dict,
                        lanes: int = 1, faults_text: str = "",
                        crash_dir: Optional[os.PathLike] = None
                        ) -> pathlib.Path:
    """Minimise one campaign violation and persist its bundle."""
    from .campaign import _combo_config
    model = violation["model"]
    policy = violation["policy"]
    specs = faults.parse_fault_specs(faults_text)
    minimised, probes = minimise_violation(program, model, policy,
                                           lanes=lanes, fault_specs=specs)
    config = _combo_config(model, policy)
    bundle = {
        "format": VERIFY_BUNDLE_FORMAT,
        "cell": violation["cell"],
        "label": "verify",
        "workload": program.name,
        "scale": 1.0,
        "params": {},
        "seed": config.seed,
        "engine": ENGINE_VERSION,
        "config": config_fingerprint(config),
        "profile_config": None,
        "faults": faults_text,
        "attempt": 1,
        "error": {
            "type": "ConsistencyViolation",
            "message": f"{model}/{policy}: outcomes outside the oracle "
                       f"set: " + "; ".join(violation["outcomes"]),
            "traceback": "",
        },
        "diagnostic": None,
        "verify": {
            "model": model,
            "policy": policy,
            "lanes": lanes,
            "program": program.to_dict(),
            "program_sha": program_sha(program),
            "minimised": minimised.to_dict(),
            "minimised_sha": program_sha(minimised),
            "probes": probes,
            "outcomes": violation["outcomes"],
            "witnesses": violation.get("witnesses", []),
            "regression": regression_snippet(minimised, model, policy,
                                             faults_text),
        },
    }
    return write_bundle(bundle, crash_dir)


# -- replay ------------------------------------------------------------------

@dataclass
class VerifyReplayReport:
    """Outcome of re-running a violation bundle's minimised program."""

    cell: str
    expected: List[str]
    observed: List[str] = field(default_factory=list)
    reproduced: bool = False
    regression: str = ""

    def format(self, events: int = 12) -> str:
        lines = [f"replay {self.cell}",
                 f"  expected: {len(self.expected)} disallowed outcome(s)"]
        lines.extend(f"    {o}" for o in self.expected)
        lines.append(f"  observed: {len(self.observed)} disallowed "
                     f"outcome(s)")
        lines.extend(f"    {o}" for o in self.observed)
        lines.append("  verdict:  " + ("REPRODUCED" if self.reproduced
                                       else "NOT-REPRODUCED"))
        if self.regression and self.reproduced:
            lines.append("  regression test:")
            lines.extend(f"    {line}"
                         for line in self.regression.splitlines())
        return "\n".join(lines)


def replay_violation(bundle: dict) -> VerifyReplayReport:
    """Re-run a violation bundle's minimised program from the bundle
    alone; REPRODUCED iff the same combo still yields any outcome the
    oracle forbids."""
    from .campaign import verify_program
    verify = bundle["verify"]
    program = VerifyProgram.from_dict(verify["minimised"])
    specs = faults.parse_fault_specs(bundle.get("faults", ""))
    result = verify_program(program, lanes=verify.get("lanes", 1),
                            fault_specs=specs,
                            grid=[(verify["model"], verify["policy"])])
    observed = [o for violation in result["violations"]
                for o in violation["outcomes"]]
    return VerifyReplayReport(
        cell=bundle.get("cell", "verify/?"),
        expected=list(verify.get("outcomes", [])),
        observed=observed,
        reproduced=bool(observed),
        regression=verify.get("regression", ""))
