"""The differential verification campaign: programs × policies × models.

Fans every generated program (:mod:`~repro.verify.generator`) across
the full commit-policy grid under both memory models, runs each thread
on its own witnessed core, composes the per-thread apparent orders
(:mod:`~repro.verify.witness`) and flags any composed outcome outside
the oracle's allowed set (:mod:`~repro.verify.oracle`).

The unit of distributed work is one *program* (all its combos and
threads run inside one worker call) dispatched through the
:class:`~repro.harness.resilience.ResilientPool`, so the campaign
inherits crash/hang/timeout recovery.  Completions append to a JSONL
checkpoint (flushed per line), so a campaign killed at any point —
Ctrl-C, SIGKILL, power loss — resumes by skipping every program whose
line is already present; at a clean end the file is rewritten in
canonical index order via an atomic replace, making checkpoints
byte-identical for identical ``(seed, count)`` regardless of
completion order or parallelism.

Cells are named ``verify/<program>/<model>/<policy>`` — the id space
``REPRO_FAULT`` patterns match, including the checker-side
``lockdown`` kind that makes a healthy run produce a real violation
on demand.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..harness.resilience import TaskSpec, get_pool, next_task_id
from ..isa import trace_program
from ..pipeline import O3Core
from ..pipeline.config import COMMITS, CoreConfig, base_config
from ..pipeline.events import EventBus
from ..pipeline.lanes import LaneBatch, LaneCell, lane_key
from ..testing import faults
from .generator import (VerifyProgram, build_thread, generate_programs,
                        program_sha)
from .oracle import MODELS, allowed_outcomes, format_outcome
from .witness import (WitnessSubscriber, apparent_order, compose_outcomes,
                      extract_witness)

__all__ = ["CHECKPOINT_VERSION", "CampaignResult", "Violation", "cell_name",
           "combos", "default_checkpoint", "run_campaign", "verify_program"]

#: checkpoint schema revision
CHECKPOINT_VERSION = 1

#: commit policies that retire loads before they perform (ECL) — they
#: raise under TSO by design, so the TSO column excludes them
ECL_POLICIES = frozenset({"vb", "br", "ecl"})

#: cycle budget per verification cell (programs are ~30 instructions)
CELL_MAX_CYCLES = 50_000


def combos() -> List[Tuple[str, str]]:
    """The (model, commit-policy) grid: RVWMO × every policy, TSO ×
    every non-ECL policy (17 combos)."""
    grid = [("rvwmo", policy) for policy in COMMITS]
    grid += [("tso", policy) for policy in COMMITS
             if policy not in ECL_POLICIES]
    return grid


def cell_name(program: str, model: str, policy: str) -> str:
    return f"verify/{program}/{model}/{policy}"


def _combo_config(model: str, policy: str) -> CoreConfig:
    return base_config(commit=policy, tso=(model == "tso"))


# -- one program through the whole grid -------------------------------------

def verify_program(program: VerifyProgram, lanes: int = 1,
                   fault_specs: Sequence[faults.FaultSpec] = (),
                   attempt: int = 1,
                   grid: Optional[Sequence[Tuple[str, str]]] = None) -> dict:
    """Run ``program`` under every (model, policy) combo; check each
    against the model's oracle.  Returns a JSON-able result::

        {"combos": N, "violations": [...], "errors": [...]}

    Violations carry the combo, the disallowed outcomes and the raw
    per-thread witnesses; errors carry cells that failed to simulate.
    """
    grid = list(grid if grid is not None else combos())
    built = [build_thread(program, t) for t in range(len(program.threads))]
    traces = [None] * len(built)

    # (combo index, thread) -> subscriber; cells carry the same key
    subscribers: Dict[Tuple[int, int], WitnessSubscriber] = {}
    cells: List[LaneCell] = []
    for c, (model, policy) in enumerate(grid):
        cid = cell_name(program.name, model, policy)
        faults.preflight(fault_specs, cid, attempt)
        drop = any(s.fires(attempt) for s in
                   faults.faults_for(fault_specs, "lockdown", cid))
        config = _combo_config(model, policy)
        for t in range(len(program.threads)):
            if traces[t] is None:
                traces[t] = trace_program(built[t][0])
            subscriber = WitnessSubscriber(drop_lockdown=drop)
            bus = EventBus()
            bus.attach(subscriber)
            subscribers[(c, t)] = subscriber
            cells.append(LaneCell((c, t), traces[t], config,
                                  max_cycles=CELL_MAX_CYCLES, bus=bus))

    errors: List[dict] = []
    failed: set = set()

    def record_error(index, exc, tb: str = "") -> None:
        c, t = index
        model, policy = grid[c]
        failed.add(c)
        errors.append({"cell": cell_name(program.name, model, policy),
                       "thread": t, "error": f"{type(exc).__name__}: {exc}",
                       "traceback": tb})

    if lanes > 1:
        # group by structural compatibility key; batch-mates must share
        # matrix layout (all verify configs share iq/rob sizes, but the
        # ROB release policy differs across commit policies)
        groups: Dict[tuple, List[LaneCell]] = {}
        for cell in cells:
            groups.setdefault(lane_key(cell.config), []).append(cell)
        for group in groups.values():
            config = group[0].config
            batch = LaneBatch(lanes, config.iq_size, config.rob_size)
            report = batch.run(group)
            for outcome in report.outcomes:
                if outcome.error is not None:
                    record_error(outcome.index, outcome.error,
                                 outcome.error_tb)
                elif outcome.timed_out:
                    record_error(outcome.index,
                                 TimeoutError("cell timed out"))
    else:
        for cell in cells:
            try:
                O3Core(cell.trace, cell.config,
                       bus=cell.bus).run(cell.max_cycles)
            except Exception as exc:
                record_error(cell.index, exc)

    violations: List[dict] = []
    for c, (model, policy) in enumerate(grid):
        if c in failed:
            continue
        witnesses = [extract_witness(subscribers[(c, t)], program, t,
                                     built[t][1])
                     for t in range(len(program.threads))]
        sequences = [apparent_order(program, t, witnesses[t], model)
                     for t in range(len(program.threads))]
        composed = compose_outcomes(program, sequences)
        bad = composed - allowed_outcomes(program, model)
        if bad:
            violations.append({
                "cell": cell_name(program.name, model, policy),
                "model": model,
                "policy": policy,
                "outcomes": sorted(format_outcome(o) for o in bad),
                "witnesses": [w.to_dict() for w in witnesses],
            })
    return {"combos": len(grid) - len(failed), "violations": violations,
            "errors": errors}


def _run_program(payload: tuple, attempt: int) -> tuple:
    """Module-level pool task: verify one program (picklable)."""
    program_dict, lanes, faults_text = payload
    try:
        specs = faults.parse_fault_specs(faults_text)
        program = VerifyProgram.from_dict(program_dict)
        result = verify_program(program, lanes=lanes, fault_specs=specs,
                                attempt=attempt)
        return "ok", result
    except Exception as exc:
        import traceback
        return "error", {"kind": "exception",
                         "message": f"{type(exc).__name__}: {exc}",
                         "traceback": traceback.format_exc(),
                         "bundle": None}


# -- checkpointing -----------------------------------------------------------

def default_checkpoint(seed: int, count: int) -> pathlib.Path:
    """``$REPRO_VERIFY_DIR``, else ``<repo>/benchmarks/verify``."""
    override = os.environ.get("REPRO_VERIFY_DIR")
    if override:
        root = pathlib.Path(override)
    else:
        repo_root = pathlib.Path(__file__).resolve().parents[3]
        root = (repo_root if (repo_root / "benchmarks").is_dir()
                else pathlib.Path.cwd()) / "benchmarks" / "verify"
    return root / f"campaign-s{seed}-n{count}.jsonl"


def _checkpoint_header(seed: int, count: int) -> dict:
    return {"seed": seed, "count": count, "version": CHECKPOINT_VERSION}


def _load_checkpoint(path: pathlib.Path, seed: int,
                     count: int) -> Dict[int, dict]:
    """Completed-program entries from an existing checkpoint; an
    unreadable, mismatched or stale file simply restarts the campaign."""
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return {}
    if not lines:
        return {}
    try:
        header = json.loads(lines[0])
    except ValueError:
        return {}
    if header != _checkpoint_header(seed, count):
        return {}
    completed: Dict[int, dict] = {}
    for line in lines[1:]:
        try:
            entry = json.loads(line)
        except ValueError:
            continue                 # torn tail line from a hard kill
        if isinstance(entry, dict) and "index" in entry:
            completed[entry["index"]] = entry
    return completed


# -- the campaign ------------------------------------------------------------

@dataclass
class CampaignResult:
    """Everything one ``repro verify`` invocation established."""

    seed: int
    programs: int
    combos_per_program: int
    completed: int = 0
    resumed: int = 0             # programs skipped via checkpoint
    violations: List[dict] = field(default_factory=list)
    errors: List[dict] = field(default_factory=list)
    bundles: List[str] = field(default_factory=list)
    checkpoint: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors

    def format(self) -> str:
        lines = [f"verify: seed={self.seed} programs={self.programs} "
                 f"combos={self.combos_per_program} "
                 f"resumed={self.resumed} violations="
                 f"{len(self.violations)} errors={len(self.errors)}"]
        for violation in self.violations:
            lines.append(f"  VIOLATION {violation['cell']}: "
                         + "; ".join(violation["outcomes"]))
        for error in self.errors:
            lines.append(f"  ERROR {error['cell']}: {error['error']}")
        for bundle in self.bundles:
            lines.append(f"  bundle: {bundle}")
        if self.checkpoint:
            lines.append(f"  checkpoint: {self.checkpoint}")
        return "\n".join(lines)


def run_campaign(seed: int, count: int, jobs: int = 1, lanes: int = 1,
                 timeout: Optional[float] = None,
                 checkpoint: Optional[os.PathLike] = None,
                 fresh: bool = False, minimise: bool = True,
                 faults_text: Optional[str] = None,
                 progress=None) -> CampaignResult:
    """Run (or resume) a campaign; returns the aggregated result.

    ``checkpoint=None`` uses :func:`default_checkpoint`.  ``fresh``
    discards any existing checkpoint.  ``minimise`` shrinks each
    violating program and writes a replayable violation bundle
    (:mod:`~repro.verify.minimise`).
    """
    if faults_text is None:
        faults_text = os.environ.get(faults.FAULT_ENV, "")
    faults.parse_fault_specs(faults_text)      # fail fast on bad grammar

    programs = generate_programs(seed, count)
    path = pathlib.Path(checkpoint) if checkpoint is not None \
        else default_checkpoint(seed, count)
    path.parent.mkdir(parents=True, exist_ok=True)
    if fresh:
        path.unlink(missing_ok=True)
    completed = _load_checkpoint(path, seed, count)
    # entries must describe the same programs (sha keys the content)
    for index, entry in list(completed.items()):
        if index >= len(programs) or \
                entry.get("sha") != program_sha(programs[index]):
            completed.clear()
            break

    result = CampaignResult(seed=seed, programs=count,
                            combos_per_program=len(combos()),
                            resumed=len(completed),
                            checkpoint=str(path))

    mode = "a" if completed else "w"
    handle = path.open(mode)
    if mode == "w":
        handle.write(json.dumps(_checkpoint_header(seed, count),
                                sort_keys=True) + "\n")
        handle.flush()

    def absorb(index: int, entry: dict) -> None:
        result.completed += 1
        result.violations.extend(entry.get("violations", []))
        result.errors.extend(entry.get("errors", []))
        if progress is not None:
            progress(result.completed + result.resumed, count)

    def record(index: int, value: dict) -> None:
        entry = {"index": index, "name": programs[index].name,
                 "sha": program_sha(programs[index]),
                 "combos": value.get("combos", 0),
                 "violations": value.get("violations", []),
                 "errors": value.get("errors", [])}
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
        completed[index] = entry
        absorb(index, entry)

    for index, entry in sorted(completed.items()):
        result.violations.extend(entry.get("violations", []))
        result.errors.extend(entry.get("errors", []))

    todo = [i for i in range(len(programs)) if i not in completed]
    try:
        if jobs > 1 and todo:
            tasks = []
            task_index: Dict[int, int] = {}
            for i in todo:
                task_id = next_task_id()
                task_index[task_id] = i
                tasks.append(TaskSpec(
                    task_id=task_id,
                    cell_id=f"verify/{programs[i].name}",
                    func=_run_program,
                    payload=(programs[i].to_dict(), lanes, faults_text),
                    est_seconds=0.2))
            pool = get_pool(jobs)

            def on_complete(task: TaskSpec, outcome) -> None:
                i = task_index[task.task_id]
                if outcome.status == "ok":
                    record(i, outcome.value)
                else:
                    failure = outcome.failure
                    record(i, {"combos": 0, "violations": [], "errors": [{
                        "cell": task.cell_id, "thread": None,
                        "error": (failure.summary() if failure is not None
                                  else "unknown failure"),
                        "traceback": ""}]})

            pool.run(tasks, timeout=timeout, retries=1,
                     on_complete=on_complete)
        else:
            for i in todo:
                status, value = _run_program(
                    (programs[i].to_dict(), lanes, faults_text), 1)
                if status == "ok":
                    record(i, value)
                else:
                    record(i, {"combos": 0, "violations": [], "errors": [{
                        "cell": f"verify/{programs[i].name}",
                        "thread": None, "error": value.get("message", "?"),
                        "traceback": value.get("traceback", "")}]})
    finally:
        handle.close()

    # clean completion: rewrite the checkpoint in canonical order so the
    # file is byte-identical across runs and parallelism levels
    if len(completed) == len(programs):
        lines = [json.dumps(_checkpoint_header(seed, count), sort_keys=True)]
        lines += [json.dumps(completed[i], sort_keys=True)
                  for i in sorted(completed)]
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text("\n".join(lines) + "\n")
        tmp.replace(path)

    if minimise and result.violations:
        from .minimise import minimise_and_bundle
        by_program: Dict[str, dict] = {}
        for violation in result.violations:
            by_program.setdefault(violation["cell"].split("/")[1],
                                  violation)
        for name, violation in by_program.items():
            program = next((p for p in programs if p.name == name), None)
            if program is None:
                continue
            try:
                bundle_path = minimise_and_bundle(
                    program, violation, lanes=lanes,
                    faults_text=faults_text)
                result.bundles.append(str(bundle_path))
            except Exception as exc:
                result.errors.append({
                    "cell": violation["cell"], "thread": None,
                    "error": f"minimisation failed: "
                             f"{type(exc).__name__}: {exc}",
                    "traceback": ""})
    return result
