"""Pipeline-side ordering witness and cross-thread outcome composition.

The pipeline is a *timing* model replaying a functional trace — it
tracks addresses, not values, and each verification thread runs on its
own :class:`~repro.pipeline.core.O3Core` (there is no shared memory
system).  So differential checking works on *orderings*:

1. A :class:`WitnessSubscriber` rides a cell's event bus and records,
   per memory op, the cycles of its observable milestones — load
   perform (writeback completion), commit, store-buffer drain — plus
   store→load forwarding sources and §3.3 lockdown transfers.

2. :func:`apparent_order` converts those raw cycles into the thread's
   *apparent global-visibility order* under the target memory model,
   applying exactly the orderings the microarchitecture is supposed to
   guarantee (and, for TSO load→load, deducing from the witness
   *whether* each reordered load pair was actually protected — by LQ
   residency or by a witnessed lockdown).  An unprotected reorder keeps
   its raw cycles and thereby shows through to the checker.

3. :func:`compose_outcomes` merges the per-thread apparent sequences
   every possible way (memoized futures DFS — apparent cycles order
   events *within* a thread; across threads any interleaving is fair),
   binding forwarded loads to their store's value and memory loads to
   the memory image at their merge point.  The result is the set of
   outcomes consistent with what the pipeline actually did.

A run is correct iff that composed set is a **subset** of the oracle's
allowed set (:mod:`~repro.verify.oracle`); any outcome outside it is a
consistency violation.

Modeling assumptions (documented in docs/INTERNALS.md):

* Store drains never observed in-run (the core's ``done()`` does not
  wait for the store buffer) are assigned apparent cycles after every
  observed event of their thread, in program order — sound, because
  apparent cycles only order events *within* a thread.
* A fence floors every later event of its thread at the maximum
  apparent cycle seen so far (the pipeline fence orders issue, not the
  store buffer; the floor is the architectural strengthening).
* Under TSO the drain gate ``max(drain, prior drains, prior loads)``
  enforces the load→store and store→store visibility order the store
  buffer provides on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .generator import VerifyProgram
from .oracle import Outcome

__all__ = ["AppEvent", "ThreadWitness", "WitnessSubscriber",
           "apparent_order", "compose_outcomes", "extract_witness"]


class WitnessSubscriber:
    """Event-bus subscriber recording one cell's memory milestones.

    ``drop_lockdown`` is the checker-side fault-injection hook: when
    set, witnessed §3.3 lockdown transfers are discarded (see the
    ``lockdown`` fault kind in :mod:`repro.testing.faults`).
    """

    def __init__(self, drop_lockdown: bool = False):
        self.drop_lockdown = drop_lockdown
        self.perform: Dict[int, int] = {}      # load seq -> cycle
        self.commit: Dict[int, int] = {}       # seq -> cycle
        self.release: Dict[int, int] = {}      # load seq -> LQ-free cycle
        self.drain: Dict[int, int] = {}        # store seq -> cycle
        self.forward: Dict[int, int] = {}      # load seq -> store seq
        self.pending_forward: Dict[int, int] = {}
        self.lockdown: Set[int] = set()

    # load completion IS perform in this pipeline (the CompleteEvent is
    # published just before the performed flag is set, so the witness
    # must not gate on it); a replay wipes the record and the re-issued
    # completion re-records it, last-wins.
    def on_complete(self, ev) -> None:
        op = ev.op
        if op.wrong_path or not op.dyn.is_load:
            return
        seq = op.seq
        self.perform[seq] = ev.cycle
        if seq in self.pending_forward:
            self.forward[seq] = self.pending_forward.pop(seq)
        else:
            self.forward.pop(seq, None)

    def on_commit(self, ev) -> None:
        self.commit[ev.op.seq] = ev.cycle

    def on_mem(self, ev) -> None:
        if ev.kind == "forward":
            self.pending_forward[ev.seq] = ev.src
        elif ev.kind == "drain":
            self.drain[ev.seq] = ev.cycle
        elif ev.kind == "lqfree":
            self.release[ev.seq] = ev.cycle
        elif ev.kind == "lockdown":
            self.release[ev.seq] = ev.cycle
            if not self.drop_lockdown:
                self.lockdown.add(ev.seq)

    def on_replay(self, ev) -> None:
        self.perform.pop(ev.seq, None)
        self.forward.pop(ev.seq, None)
        self.pending_forward.pop(ev.seq, None)

    def on_squash(self, ev) -> None:
        for op in ev.ops:
            seq = op.seq
            self.perform.pop(seq, None)
            self.commit.pop(seq, None)
            self.release.pop(seq, None)
            self.forward.pop(seq, None)
            self.pending_forward.pop(seq, None)
            self.lockdown.discard(seq)


@dataclass
class ThreadWitness:
    """One thread's extracted milestone record, keyed by op index."""

    perform: Dict[int, int] = field(default_factory=dict)
    commit: Dict[int, int] = field(default_factory=dict)
    release: Dict[int, int] = field(default_factory=dict)
    drain: Dict[int, int] = field(default_factory=dict)
    forward: Dict[int, int] = field(default_factory=dict)  # op idx -> value
    lockdown: Set[int] = field(default_factory=set)

    def to_dict(self) -> dict:
        return {"perform": dict(self.perform), "commit": dict(self.commit),
                "release": dict(self.release), "drain": dict(self.drain),
                "forward": dict(self.forward),
                "lockdown": sorted(self.lockdown)}


def extract_witness(subscriber: WitnessSubscriber,
                    program: VerifyProgram, thread: int,
                    seq_map: Dict[int, int]) -> ThreadWitness:
    """Re-key a subscriber's seq-indexed records by thread op index,
    resolving forwarding sources to the forwarding store's *value*."""
    ops = program.threads[thread]
    seq_to_op = {seq: i for i, seq in seq_map.items()}
    witness = ThreadWitness()
    for i, op in enumerate(ops):
        seq = seq_map[i]
        if op.kind == "load":
            if seq in subscriber.perform:
                witness.perform[i] = subscriber.perform[seq]
            if seq in subscriber.release:
                witness.release[i] = subscriber.release[seq]
            if seq in subscriber.forward:
                src = seq_to_op.get(subscriber.forward[seq])
                if src is not None and ops[src].kind == "store":
                    witness.forward[i] = ops[src].value
            if seq in subscriber.lockdown:
                witness.lockdown.add(i)
        elif op.kind == "store":
            if seq in subscriber.drain:
                witness.drain[i] = subscriber.drain[seq]
        if seq in subscriber.commit:
            witness.commit[i] = subscriber.commit[seq]
    return witness


# -- apparent order ----------------------------------------------------------

@dataclass(frozen=True)
class AppEvent:
    """One globally-visible event in a thread's apparent order."""

    apparent: int
    index: int                   # op index within the thread
    kind: str                    # "load" | "drain"
    addr: int
    value: Optional[int]         # drain: store value; load: forwarded
    #                            # value, or None = read memory at merge


def _tso_protected(index: int, ops, witness: ThreadWitness,
                   raw_perform: Dict[int, int]) -> bool:
    """Was load ``index``'s early perform protected against every older
    load it overtook?

    For each older load that performed *after* this one: covered if it
    performed while this load still held its LQ entry (the snoop/replay
    window — its perform precedes this load's witnessed LQ release), or
    if this load took a witnessed §3.3 lockdown at release.  Unprotected
    overtakes keep their raw order and show through to the checker.
    """
    mine = raw_perform.get(index)
    release = witness.release.get(index)
    for j in range(index):
        if ops[j].kind != "load":
            continue
        other = raw_perform.get(j)
        if mine is None or other is None or other <= mine:
            continue
        covered = (release is not None and other < release) \
            or index in witness.lockdown
        if not covered:
            return False
    return True


def apparent_order(program: VerifyProgram, thread: int,
                   witness: ThreadWitness, model: str) -> List[AppEvent]:
    """The thread's apparent global-visibility sequence under ``model``."""
    ops = program.threads[thread]

    # raw cycles; stores that never drained in-run are placed after
    # every observed event of the thread, in program order
    raw_perform = dict(witness.perform)
    raw_drain = dict(witness.drain)
    observed = list(raw_perform.values()) + list(raw_drain.values()) \
        + list(witness.commit.values())
    horizon = max(observed, default=0)
    for i, op in enumerate(ops):
        if op.kind == "load" and i not in raw_perform:
            horizon += 1                       # interrupted run: be sound
            raw_perform[i] = horizon
        elif op.kind == "store" and i not in raw_drain:
            horizon += 1
            raw_drain[i] = horizon

    events: List[AppEvent] = []
    floor = 0                                  # fence floor
    max_load = 0
    max_drain = 0
    max_all = 0
    drain_app: Dict[int, int] = {}             # addr -> latest drain apparent
    tso = model == "tso"
    for i, op in enumerate(ops):
        if op.kind == "fence":
            floor = max_all
            continue
        if op.kind == "load":
            value = witness.forward.get(i)
            apparent = max(raw_perform[i], floor)
            if value is None:
                # read-own-write coherence: a memory-reading load never
                # appears before a po-earlier same-address store of its
                # own thread (replayed loads lose their forwarding
                # witness, so the raw perform alone can predate the
                # drain it semantically read from).  A load with an
                # intact forward binding stays at its early perform:
                # reading the buffered store *before* it drains is the
                # store-buffer semantics, and hoisting it past the
                # drain would let the composition pair the forwarded
                # value with merge points where it is no longer the
                # latest write — a false violation.
                apparent = max(apparent, drain_app.get(op.addr, 0))
            if tso and _tso_protected(i, ops, witness, raw_perform):
                apparent = max(apparent, max_load)
            max_load = max(max_load, apparent)
            events.append(AppEvent(apparent, i, "load", op.addr, value))
        else:
            apparent = max(raw_drain[i], max_drain, floor)
            if tso:
                apparent = max(apparent, max_load)
            max_drain = max(max_drain, apparent)
            drain_app[op.addr] = apparent
            events.append(AppEvent(apparent, i, "drain", op.addr, op.value))
        max_all = max(max_all, apparent)
    events.sort(key=lambda e: (e.apparent, e.index))
    # A forwarded load hoisted past its source store's drain (by a
    # fence floor or a TSO load->load chain) reads memory at its merge
    # point instead of keeping the stale binding: at that apparent
    # position the source's value is in memory anyway, and had a
    # remote same-address write intervened the LQ snoop would have
    # replayed the load — pinning the old value would compose
    # coherence-violating outcomes a healthy machine cannot produce.
    # (Store values are unique per address, so (addr, value)
    # identifies the source drain.)
    drained: Set[Tuple[int, Optional[int]]] = set()
    for k, e in enumerate(events):
        if e.kind == "drain":
            drained.add((e.addr, e.value))
        elif e.value is not None and (e.addr, e.value) in drained:
            events[k] = AppEvent(e.apparent, e.index, e.kind, e.addr, None)
    return events


# -- cross-thread composition ------------------------------------------------

def compose_outcomes(program: VerifyProgram,
                     sequences: Sequence[List[AppEvent]]
                     ) -> FrozenSet[Outcome]:
    """Every outcome reachable by interleaving the threads' apparent
    sequences (order within a thread fixed, any merge across threads).

    Memoized futures DFS on (per-thread positions, memory image); the
    returned outcomes use the oracle's canonical form, so correctness
    is a subset test against :func:`~repro.verify.oracle.allowed_outcomes`.
    """
    addrs = program.addrs
    addr_index = {a: i for i, a in enumerate(addrs)}
    n = len(sequences)
    init_mem = tuple(0 for _ in addrs)

    Binding = Tuple[Tuple[int, int], int]
    memo: Dict[Tuple, FrozenSet] = {}

    def explore(positions: Tuple[int, ...],
                memory: Tuple[int, ...]) -> FrozenSet:
        key = (positions, memory)
        cached = memo.get(key)
        if cached is not None:
            return cached
        futures: Set[Tuple[Tuple[Binding, ...], Tuple[int, ...]]] = set()
        moved = False
        for t in range(n):
            pos = positions[t]
            if pos >= len(sequences[t]):
                continue
            moved = True
            event = sequences[t][pos]
            positions2 = positions[:t] + (pos + 1,) + positions[t + 1:]
            if event.kind == "drain":
                k = addr_index[event.addr]
                mem2 = memory[:k] + (event.value,) + memory[k + 1:]
                for sub in explore(positions2, mem2):
                    futures.add(sub)
            else:
                value = event.value
                if value is None:
                    value = memory[addr_index[event.addr]]
                bind = ((t, event.index), value)
                for binds, final in explore(positions2, memory):
                    futures.add(((bind,) + binds, final))
        if not moved:
            futures.add(((), memory))
        result = frozenset(futures)
        memo[key] = result
        return result

    finals = explore(tuple(0 for _ in range(n)), init_mem)
    return frozenset((tuple(sorted(binds)), tuple(zip(addrs, mem)))
                     for binds, mem in finals)
