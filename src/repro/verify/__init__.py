"""Differential memory-consistency verification (``repro verify``).

Seed-deterministic multi-threaded programs (:mod:`.generator`) run
through the pipeline under every commit policy and memory model; the
witnessed per-thread orderings (:mod:`.witness`) compose into the set
of outcomes the pipeline could have produced, checked for containment
in an independent architectural oracle's allowed set (:mod:`.oracle`).
Violations are delta-minimised into replayable bundles
(:mod:`.minimise`); the campaign driver with checkpoint/resume lives
in :mod:`.campaign` (imported lazily by the CLI — it pulls in the
harness stack).
"""

from .generator import (CLASSIC_SHAPES, MemOp, VerifyProgram, build_thread,
                        classic_program, generate_programs, program_sha,
                        register_litmus_targets)
from .oracle import MODELS, allowed_outcomes, format_outcome
from .witness import (WitnessSubscriber, apparent_order, compose_outcomes,
                      extract_witness)

__all__ = ["CLASSIC_SHAPES", "MODELS", "MemOp", "VerifyProgram",
           "WitnessSubscriber", "allowed_outcomes", "apparent_order",
           "build_thread", "classic_program", "compose_outcomes",
           "extract_witness", "format_outcome", "generate_programs",
           "program_sha", "register_litmus_targets"]
