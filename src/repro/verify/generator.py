"""Seed-deterministic program generator for the verification campaign.

A :class:`VerifyProgram` is an abstract multi-threaded memory test: one
to three straight-line threads of loads, stores and fences over a small
shared address pool.  Every store carries a program-unique value and
every load targets a register nothing reads, so the complete observable
behaviour of a run is (per-load bound value, final memory image) — the
outcome form both the :mod:`~repro.verify.oracle` and the pipeline
witness composition produce.

The grammar is deliberately restricted so that a *healthy* pipeline can
never be flagged (the witness composition in
:mod:`~repro.verify.witness` is exact under these bounds):

* static addresses only — no load-derived addresses, no branches;
* at most one load per address per thread (coherence read-read corners
  on the same line need cache-state tracking the witness doesn't do);
* a thread never stores to an address it previously loaded (the
  committed-early-load-then-own-store corner likewise);
* store→load to the same address within a thread *is* allowed — the
  pipeline forwards it and the witness binds the forwarded value.

Load ``delay`` chains the load's address register on the *result of
the most recent prior load* of its thread (times zero, so the address
itself never changes) plus ``delay`` extra multiplies.  A dependent
load cannot even issue until its producer returns from memory, so the
chain staggers perform cycles by full miss latencies — the lever that
makes the pipeline genuinely reorder younger independent loads around
it (and, under Orinoco's unordered commit in TSO mode, take §3.3
lockdowns) instead of just proving in-order runs correct.  With no
prior load the chain degenerates to ``delay`` multiplies.  The oracle
deliberately ignores these dependencies (it stays *permissive*, which
can only suppress false positives, never create them).

The six classic two-thread litmus shapes (SB, MP, LB, S, R, 2+2W) plus
fenced SB/MP variants are enumerated first in every generated set; the
remainder is seeded-random.  Classic shape threads also register as
:class:`~repro.workloads.targets.WorkloadTarget`s (kind ``verify``,
excluded from default sweeps) so ``repro kernels`` lists them and
``repro run`` can simulate a single litmus thread directly.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import Program, ProgramBuilder, Trace, trace_program
from ..workloads.targets import WorkloadTarget, has_target, register_target

__all__ = ["CLASSIC_SHAPES", "MemOp", "VerifyProgram", "VerifyThreadTarget",
           "build_thread", "classic_program", "generate_programs",
           "program_sha", "register_litmus_targets", "thread_trace"]

#: shared address pool base (8-byte aligned words)
ADDR_BASE = 0x100

#: hard grammar bounds (the oracle's state space stays tiny)
MAX_THREADS = 3
MAX_OPS_PER_THREAD = 8
MAX_TOTAL_OPS = 12               # per program, over all threads
MAX_ADDRS = 4
MAX_DELAY = 3


@dataclass(frozen=True)
class MemOp:
    """One abstract memory operation in a thread's program order."""

    kind: str                      # "load" | "store" | "fence"
    addr: Optional[int] = None     # word address (None for fences)
    value: Optional[int] = None    # store value (program-unique)
    delay: int = 0                 # load address dependency chain length

    def to_dict(self) -> dict:
        return {"kind": self.kind, "addr": self.addr,
                "value": self.value, "delay": self.delay}

    @staticmethod
    def from_dict(data: dict) -> "MemOp":
        return MemOp(data["kind"], data.get("addr"), data.get("value"),
                     data.get("delay", 0))


@dataclass(frozen=True)
class VerifyProgram:
    """A complete multi-threaded verification program."""

    name: str
    threads: Tuple[Tuple[MemOp, ...], ...]
    addrs: Tuple[int, ...]

    def loads(self) -> List[Tuple[int, int, MemOp]]:
        """Every load as ``(thread, op_index, op)`` in canonical order."""
        return [(t, i, op) for t, ops in enumerate(self.threads)
                for i, op in enumerate(ops) if op.kind == "load"]

    def stores(self) -> List[Tuple[int, int, MemOp]]:
        return [(t, i, op) for t, ops in enumerate(self.threads)
                for i, op in enumerate(ops) if op.kind == "store"]

    def mem_ops(self) -> int:
        return sum(1 for ops in self.threads for op in ops
                   if op.kind != "fence")

    def to_dict(self) -> dict:
        return {"name": self.name,
                "addrs": list(self.addrs),
                "threads": [[op.to_dict() for op in ops]
                            for ops in self.threads]}

    @staticmethod
    def from_dict(data: dict) -> "VerifyProgram":
        return VerifyProgram(
            name=data["name"],
            threads=tuple(tuple(MemOp.from_dict(op) for op in ops)
                          for ops in data["threads"]),
            addrs=tuple(data["addrs"]))


def program_sha(program: VerifyProgram) -> str:
    """Content hash of a program (checkpoint identity across runs)."""
    blob = json.dumps(program.to_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# -- the classic shapes ------------------------------------------------------

def _addr(index: int) -> int:
    return ADDR_BASE + 8 * index

_X, _Y = _addr(0), _addr(1)


def _prog(name: str, *threads: Sequence[MemOp]) -> VerifyProgram:
    addrs = tuple(sorted({op.addr for ops in threads for op in ops
                          if op.addr is not None}))
    return VerifyProgram(name, tuple(tuple(ops) for ops in threads), addrs)


def _ld(addr: int, delay: int = 0) -> MemOp:
    return MemOp("load", addr, delay=delay)


def _st(addr: int, value: int) -> MemOp:
    return MemOp("store", addr, value)


_FENCE = MemOp("fence")

#: the enumerated litmus shapes, in a fixed order.  ``delay`` on the
#: first load of each load pair pushes its perform past the younger
#: load's, so the interesting reorderings actually occur on hardware
#: that permits them.
CLASSIC_SHAPES: Dict[str, VerifyProgram] = {}


def _classic(program: VerifyProgram) -> VerifyProgram:
    CLASSIC_SHAPES[program.name] = program
    return program

# SB (store buffering): both loads may see 0 under TSO and RVWMO.
_classic(_prog("sb",
               [_st(_X, 1), _ld(_Y)],
               [_st(_Y, 2), _ld(_X)]))
# SB with full fences: the weak outcome is forbidden everywhere.
_classic(_prog("sb_fence",
               [_st(_X, 1), _FENCE, _ld(_Y)],
               [_st(_Y, 2), _FENCE, _ld(_X)]))
# MP (message passing): r(y)=2 ∧ r(x)=0 forbidden under TSO.
_classic(_prog("mp",
               [_st(_X, 1), _st(_Y, 2)],
               [_ld(_Y, delay=3), _ld(_X)]))
# MP with fences: forbidden under RVWMO as well.
_classic(_prog("mp_fence",
               [_st(_X, 1), _FENCE, _st(_Y, 2)],
               [_ld(_Y, delay=3), _FENCE, _ld(_X)]))
# LB (load buffering): r(x)=2 ∧ r(y)=1 forbidden under TSO.
_classic(_prog("lb",
               [_ld(_X, delay=2), _st(_Y, 1)],
               [_ld(_Y, delay=2), _st(_X, 2)]))
# S: r(y)=2 ∧ final x=1 forbidden under TSO.
_classic(_prog("s",
               [_st(_X, 1), _st(_Y, 2)],
               [_ld(_Y, delay=2), _st(_X, 3)]))
# R: r(x)=0 ∧ final y=2 allowed under TSO (store-buffer W→R reorder).
_classic(_prog("r",
               [_st(_X, 1), _st(_Y, 2)],
               [_st(_Y, 3), _ld(_X)]))
# 2+2W: final x=1 ∧ y=3 forbidden under TSO (W→W order).
_classic(_prog("2p2w",
               [_st(_X, 1), _st(_Y, 2)],
               [_st(_Y, 3), _st(_X, 4)]))
# MP with a helper load feeding the flag load's address chain: the
# data load (younger, independent) performs a full miss latency before
# the flag load, so unordered-commit policies retire it early and —
# under TSO — must take a §3.3 lockdown.  The campaign's directed
# lockdown coverage rides on this shape.
_Z = _addr(2)
_classic(_prog("mp_stress",
               [_st(_X, 1), _st(_Y, 2)],
               [_ld(_Z), _ld(_Y, delay=2), _ld(_X)]))


def classic_program(name: str) -> VerifyProgram:
    try:
        return CLASSIC_SHAPES[name]
    except KeyError as exc:
        raise ValueError(f"unknown litmus shape {name!r}; choose from "
                         f"{sorted(CLASSIC_SHAPES)}") from exc


# -- random generation -------------------------------------------------------

def _random_program(rng: random.Random, index: int) -> VerifyProgram:
    n_threads = rng.randint(1, MAX_THREADS)
    n_addrs = rng.randint(2, MAX_ADDRS)
    addrs = tuple(_addr(i) for i in range(n_addrs))
    value = 1
    threads: List[Tuple[MemOp, ...]] = []
    budget = MAX_TOTAL_OPS
    for t in range(n_threads):
        # keep the whole program inside the oracle's tractable range:
        # its interleaving state space is exponential in per-thread op
        # counts, so threads share a total budget (leaving >= 2 ops for
        # each thread still to come)
        cap = min(MAX_OPS_PER_THREAD, budget - 2 * (n_threads - 1 - t))
        n_ops = rng.randint(2, max(2, cap))
        budget -= n_ops
        ops: List[MemOp] = []
        loaded: set = set()      # addresses this thread already loaded
        fences = 0
        for _ in range(n_ops):
            choices = ["store"] * 3
            loadable = [a for a in addrs if a not in loaded]
            if loadable:
                choices += ["load"] * 3
            if ops and fences < 2 and ops[-1].kind != "fence":
                choices.append("fence")
            kind = rng.choice(choices)
            if kind == "load":
                addr = rng.choice(loadable)
                loaded.add(addr)
                ops.append(_ld(addr, delay=rng.randint(0, MAX_DELAY)))
            elif kind == "store":
                storable = [a for a in addrs if a not in loaded]
                if not storable:
                    continue
                ops.append(_st(rng.choice(storable), value))
                value += 1
            else:
                ops.append(_FENCE)
                fences += 1
        if not any(op.kind != "fence" for op in ops):
            ops.append(_st(addrs[0], value))
            value += 1
        threads.append(tuple(ops))
    return VerifyProgram(f"p{index:04d}", tuple(threads), addrs)


def generate_programs(seed: int, count: int) -> List[VerifyProgram]:
    """The campaign's program set: classics first, then seeded-random.

    Byte-deterministic in ``(seed, count)``: the same arguments always
    produce the same programs in the same order (asserted in tests —
    checkpoint files key on this).
    """
    programs = list(CLASSIC_SHAPES.values())[:count]
    rng = random.Random(seed)
    index = len(programs)
    while len(programs) < count:
        programs.append(_random_program(rng, index))
        index += 1
    return programs


# -- lowering to ISA programs ------------------------------------------------

#: register allocation for generated threads: x1 holds the zero base,
#: x5..x8 rotate as delayed address registers, x10.. are load
#: destinations (never read), x20.. rotate as store-value sources.
_BASE = "x1"


def build_thread(program: VerifyProgram,
                 thread: int) -> Tuple[Program, Dict[int, int]]:
    """Lower one thread to an ISA :class:`Program`.

    Returns ``(program, seq_map)`` where ``seq_map[op_index]`` is the
    dynamic-trace seq of that op's memory (or fence) instruction — the
    thread is straight-line, so trace seq == static instruction index.
    """
    ops = program.threads[thread]
    b = ProgramBuilder(f"verify:{program.name}.t{thread}")
    pc = 0

    def emit(fn, *args) -> None:
        nonlocal pc
        fn(*args)
        pc += 1

    emit(b.li, _BASE, 0)
    seq_map: Dict[int, int] = {}
    load_reg = 10
    prev_load: Optional[str] = None
    for i, op in enumerate(ops):
        if op.kind == "fence":
            seq_map[i] = pc
            emit(b.fence)
        elif op.kind == "load":
            base = _BASE
            if op.delay:
                base = f"x{5 + (i % 4)}"
                emit(b.li, base, 0)
                if prev_load is not None:
                    # 0 * <loaded value>: the address stays put, the
                    # dependency on the prior load's data is real
                    emit(b.mul, base, base, prev_load)
                for _ in range(op.delay):
                    emit(b.mul, base, base, base)
            seq_map[i] = pc
            emit(b.ld, f"x{load_reg}", base, op.addr)
            prev_load = f"x{load_reg}"
            load_reg += 1
        else:
            src = f"x{20 + (i % 8)}"
            emit(b.li, src, op.value)
            seq_map[i] = pc
            emit(b.sd, src, _BASE, op.addr)
    emit(b.halt)
    return b.build(), seq_map


def thread_trace(program: VerifyProgram, thread: int) -> Trace:
    isa_program, _ = build_thread(program, thread)
    return trace_program(isa_program)


# -- workload-target registration -------------------------------------------

class VerifyThreadTarget(WorkloadTarget):
    """One litmus-shape thread as a registered workload target."""

    kind = "verify"

    def __init__(self, program: VerifyProgram, thread: int):
        super().__init__(f"litmus.{program.name}.t{thread}")
        self.program = program
        self.thread = thread

    def build_trace(self, scale: float = 1.0) -> Trace:
        return thread_trace(self.program, self.thread)

    def fingerprint(self, scale: float = 1.0) -> Dict[str, object]:
        return {"kind": self.kind, "sha": program_sha(self.program),
                "thread": self.thread}

    def provenance(self) -> str:
        return (f"generated: litmus shape {self.program.name!r} "
                f"thread {self.thread}")

    def sweeps(self) -> bool:
        return False                 # litmus threads stay out of sweeps


def register_litmus_targets() -> None:
    """Register every classic shape thread (idempotent)."""
    for program in CLASSIC_SHAPES.values():
        for thread in range(len(program.threads)):
            target = VerifyThreadTarget(program, thread)
            if not has_target(target.name):
                register_target(target)


# self-register on import: whichever of repro.workloads / repro.verify
# loads first, the litmus targets end up in the registry exactly once
register_litmus_targets()
