"""Allowed-outcome oracles for TSO and RVWMO, by exhaustive exploration.

Independent of the pipeline: each oracle is a tiny operational model of
the memory consistency architecture, explored by a memoized depth-first
search over every nondeterministic scheduling choice.  An *outcome* is
the canonical pair

    (sorted ((thread, op_index), value) load bindings,
     final memory image over the program's address pool)

— exactly the form the witness composition in
:mod:`~repro.verify.witness` produces, so a pipeline run is correct iff
its outcome is a member of the oracle set.

**TSO model** — per-thread program counter plus a per-thread FIFO store
buffer.  A step either (a) executes the next instruction of some thread
(stores enter the buffer; loads forward from the youngest same-address
entry of *their own* buffer, else read memory; fences require the own
buffer to be empty) or (b) drains the oldest entry of some thread's
buffer to memory.  This is the standard operational presentation of
x86-/RISC-V-style TSO: loads are ordered, stores are ordered, and only
the store→load pair may appear reordered (through the buffer).

**RVWMO model** — each memory operation is picked individually, in any
order consistent with the few orderings RVWMO does enforce on plain
accesses: a load or store may not proceed past a po-earlier undone
fence; a store may not drain before a po-earlier same-address store;
and a load forced to forward takes the youngest po-earlier undrained
same-address store of its own thread (RVWMO's load-value axiom), else
reads memory.  Same-address load→load pairs don't occur (generator
grammar), so CoRR needs no special case.

Both searches memoize on (per-thread progress, memory image) and return
*futures* — the set of (bindings-made-after-here, final-memory) pairs —
so shared suffixes are explored once.  Program sizes are capped by the
generator grammar (≤3 threads × ≤8 memory ops), keeping the state space
a few thousand nodes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .generator import MemOp, VerifyProgram

__all__ = ["MODELS", "Outcome", "allowed_outcomes", "format_outcome"]

MODELS = ("rvwmo", "tso")

#: ``(((thread, op_index), value), ...) sorted`` × ``((addr, value), ...)``
Outcome = Tuple[Tuple[Tuple[Tuple[int, int], int], ...],
                Tuple[Tuple[int, int], ...]]

Binding = Tuple[Tuple[int, int], int]
Future = Tuple[Tuple[Binding, ...], Tuple[int, ...]]


def format_outcome(outcome: Outcome) -> str:
    loads, memory = outcome
    reads = " ".join(f"r{t}.{i}={v}" for (t, i), v in loads)
    mem = " ".join(f"[{a:#x}]={v}" for a, v in memory)
    return f"{reads or '(no loads)'} | {mem}".strip()


def _canonical(bindings: Tuple[Binding, ...],
               memory: Tuple[int, ...],
               addrs: Tuple[int, ...]) -> Outcome:
    return (tuple(sorted(bindings)),
            tuple(zip(addrs, memory)))


# -- TSO ---------------------------------------------------------------------

def _tso_outcomes(program: VerifyProgram) -> Set[Outcome]:
    threads = program.threads
    addrs = program.addrs
    addr_index = {a: i for i, a in enumerate(addrs)}
    n = len(threads)
    init_mem = tuple(0 for _ in addrs)

    memo: Dict[Tuple, FrozenSet[Future]] = {}

    def explore(pcs: Tuple[int, ...],
                buffers: Tuple[Tuple[Tuple[int, int], ...], ...],
                memory: Tuple[int, ...]) -> FrozenSet[Future]:
        key = (pcs, buffers, memory)
        cached = memo.get(key)
        if cached is not None:
            return cached
        futures: Set[Future] = set()
        moved = False
        for t in range(n):
            ops = threads[t]
            buf = buffers[t]
            # (a) execute this thread's next instruction
            if pcs[t] < len(ops):
                op = ops[pcs[t]]
                if op.kind == "fence" and buf:
                    pass                     # fence waits for own drain
                else:
                    moved = True
                    pcs2 = pcs[:t] + (pcs[t] + 1,) + pcs[t + 1:]
                    if op.kind == "store":
                        buf2 = buffers[:t] + (buf + ((op.addr, op.value),),) \
                            + buffers[t + 1:]
                        for sub in explore(pcs2, buf2, memory):
                            futures.add(sub)
                    elif op.kind == "load":
                        value = None
                        for a, v in reversed(buf):
                            if a == op.addr:
                                value = v
                                break
                        if value is None:
                            value = memory[addr_index[op.addr]]
                        bind = ((t, pcs[t]), value)
                        for binds, final in explore(pcs2, buffers, memory):
                            futures.add(((bind,) + binds, final))
                    else:                    # fence, buffer empty
                        for sub in explore(pcs2, buffers, memory):
                            futures.add(sub)
            # (b) drain the oldest entry of this thread's buffer
            if buf:
                moved = True
                addr, value = buf[0]
                buf2 = buffers[:t] + (buf[1:],) + buffers[t + 1:]
                i = addr_index[addr]
                mem2 = memory[:i] + (value,) + memory[i + 1:]
                for sub in explore(pcs, buf2, mem2):
                    futures.add(sub)
        if not moved:
            futures.add(((), memory))
        result = frozenset(futures)
        memo[key] = result
        return result

    finals = explore(tuple(0 for _ in range(n)),
                     tuple(() for _ in range(n)), init_mem)
    return {_canonical(binds, mem, addrs) for binds, mem in finals}


# -- RVWMO -------------------------------------------------------------------

def _rvwmo_outcomes(program: VerifyProgram) -> Set[Outcome]:
    threads = program.threads
    addrs = program.addrs
    addr_index = {a: i for i, a in enumerate(addrs)}
    n = len(threads)
    init_mem = tuple(0 for _ in addrs)

    # done-state per thread: a bitmask over that thread's ops
    memo: Dict[Tuple, FrozenSet[Future]] = {}

    def ready(t: int, i: int, done: int) -> bool:
        """May op i of thread t perform now, given its thread's done set?"""
        ops = threads[t]
        op = ops[i]
        for j in range(i):
            prior = ops[j]
            if done >> j & 1:
                continue
            if prior.kind == "fence":
                return False                 # fence orders everything
            if op.kind == "fence":
                return False                 # ...in both directions
            if op.kind == "store" and prior.kind in ("store", "load") \
                    and prior.addr == op.addr:
                return False                 # PPO: same-addr any→W
        return True

    def forward_value(t: int, i: int, done: int) -> Optional[int]:
        """Youngest po-earlier undrained same-address store, if any."""
        ops = threads[t]
        addr = ops[i].addr
        for j in range(i - 1, -1, -1):
            prior = ops[j]
            if prior.kind == "store" and prior.addr == addr:
                if done >> j & 1:
                    return None              # already in memory
                return prior.value           # must forward (load-value axiom)
        return None

    def explore(done: Tuple[int, ...],
                memory: Tuple[int, ...]) -> FrozenSet[Future]:
        key = (done, memory)
        cached = memo.get(key)
        if cached is not None:
            return cached
        futures: Set[Future] = set()
        moved = False
        for t in range(n):
            ops = threads[t]
            mask = done[t]
            for i, op in enumerate(ops):
                if mask >> i & 1 or not ready(t, i, mask):
                    continue
                moved = True
                done2 = done[:t] + (mask | 1 << i,) + done[t + 1:]
                if op.kind == "store":
                    k = addr_index[op.addr]
                    mem2 = memory[:k] + (op.value,) + memory[k + 1:]
                    for sub in explore(done2, mem2):
                        futures.add(sub)
                elif op.kind == "load":
                    value = forward_value(t, i, mask)
                    if value is None:
                        value = memory[addr_index[op.addr]]
                    bind = ((t, i), value)
                    for binds, final in explore(done2, memory):
                        futures.add(((bind,) + binds, final))
                else:                        # fence: pure ordering
                    for sub in explore(done2, memory):
                        futures.add(sub)
        if not moved:
            futures.add(((), memory))
        result = frozenset(futures)
        memo[key] = result
        return result

    finals = explore(tuple(0 for _ in range(n)), init_mem)
    return {_canonical(binds, mem, addrs) for binds, mem in finals}


# -- public API --------------------------------------------------------------

@lru_cache(maxsize=256)
def _allowed_cached(model: str, blob: str) -> FrozenSet[Outcome]:
    import json
    program = VerifyProgram.from_dict(json.loads(blob))
    if model == "tso":
        return frozenset(_tso_outcomes(program))
    if model == "rvwmo":
        return frozenset(_rvwmo_outcomes(program))
    raise ValueError(f"unknown memory model {model!r}; choose from {MODELS}")


def allowed_outcomes(program: VerifyProgram,
                     model: str) -> FrozenSet[Outcome]:
    """Every architecturally allowed outcome of ``program`` under
    ``model`` (``"tso"`` or ``"rvwmo"``)."""
    import json
    blob = json.dumps(program.to_dict(), sort_keys=True)
    return _allowed_cached(model, blob)
